// Package server is the TCP serving layer over the container stack: it
// exposes any container.Container — one of the seven structures, sharded or
// not — over the internal/proto wire protocol.
//
// The design puts the per-connection cost where PRs 1-4 put the
// per-operation cost: at zero in steady state. Each accepted connection is
// owned by exactly one goroutine that binds a container.Session once, so
// the pooled-Handle/epoch fast path is paid at accept time, not per
// operation; the proto Reader and Writer give the connection two reusable
// buffers, so the request→apply→reply loop allocates nothing after warmup.
//
// The loop's unit of work is a batch, not a frame: every complete frame the
// socket already delivered is decoded into a reusable request batch, the
// batch is applied through the pinned Session inside one epoch guard (the
// per-op guards nest into depth-counter bumps), its log records — with
// durability on — are appended as one WAL batch, every reply lands in the
// write buffer through a flat per-opcode dispatch table, and the writer
// hits the socket only when the read buffer runs dry (one flush per
// pipelined batch). Syscalls, epoch transitions, WAL mutex rounds, shared
// counter updates and fsyncs are all amortized over the batch; the
// /metrics batch-size distribution makes the amortization observable.
//
// Backpressure is structural rather than queued: there is no request queue
// to grow without bound. A connection's requests are processed strictly in
// order by its one goroutine (TCP's own flow control throttles a client
// that outruns it), connections beyond MaxConns are refused with an error
// frame, and IdleTimeout reclaims connections that stop talking.
//
// Graceful shutdown preserves the conservation invariant across the wire:
// an operation is acknowledged only after it was applied, and a draining
// connection always flushes the acknowledgements of everything it applied
// before closing. Shutdown therefore loses requests (unread ones are never
// applied, so the client never sees an ack for them) but never
// acknowledged operations — the server's final Size equals the sum of every
// client's acknowledged inserts minus acknowledged deletes, which the soak
// test checks literally. See DESIGN.md, "The network service layer".
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/container"
	"pragmaprim/internal/obs"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stats"
	"pragmaprim/internal/wal"
)

// Config tunes a Server. The zero value serves on a random loopback port
// with library defaults.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0" (a random
	// loopback port, reported by Server.Addr).
	Addr string
	// MaxConns caps concurrently served connections; beyond it new
	// connections are refused with an error frame. 0 means DefaultMaxConns;
	// negative means unlimited.
	MaxConns int
	// IdleTimeout closes a connection that sends nothing for this long.
	// 0 disables idle collection (shutdown still interrupts blocked reads
	// via deadlines).
	IdleTimeout time.Duration
	// ReadBuf and WriteBuf are the per-connection proto buffer sizes;
	// 0 means proto.DefaultBufSize.
	ReadBuf, WriteBuf int
	// Durable, when non-nil, turns on the write-ahead logging path: acked ⇔
	// durable instead of acked ⇔ applied. See Durability.
	Durable *Durability
	// Obs is the metrics registry the server registers its instruments into
	// (op latency histograms, WAL histograms, reclaim gauges, counters);
	// nil means a fresh private registry. The observability plane is always
	// on — its record path is allocation-free and costs a handful of atomic
	// adds per flush, so there is no off switch. One registry serves one
	// server (registering two servers into one duplicates the sample names).
	Obs *obs.Registry
	// SlowOpThreshold is the flush-interval duration at or above which the
	// interval's operations are captured in the slow-op trace ring
	// (readable via the TRACE command and the /trace endpoint). 0 means
	// DefaultSlowOp; negative disables capture.
	SlowOpThreshold time.Duration
	// TraceDepth is the slow-op ring capacity (rounded up to a power of
	// two); 0 means obs.DefaultTraceDepth.
	TraceDepth int
}

// DefaultMaxConns is the connection cap when Config.MaxConns is 0.
const DefaultMaxConns = 1024

// DefaultSlowOp is the slow-op capture threshold when Config.SlowOpThreshold
// is 0: long enough that a healthy in-memory batch never trips it, short
// enough to catch an fsync stall or an epoch-advance pile-up.
const DefaultSlowOp = 10 * time.Millisecond

// slowTracePerFlush caps how many of a slow flush interval's ops enter the
// trace ring, so one giant slow batch cannot wipe the ring's history.
const slowTracePerFlush = 8

// latStripes is the stripe count of the per-op latency histograms;
// connections spread over the stripes round-robin, so concurrent flushes
// usually record on distinct cache lines.
const latStripes = 8

// maxBatch caps how many requests one decoded batch may hold, bounding the
// reusable request slice however large the read buffer is configured.
const maxBatch = 8192

// batchHistBuckets covers batch sizes up to 2^15, comfortably past maxBatch.
const batchHistBuckets = 16

// padCounter is an atomic counter padded out to its own 64-byte cache line.
// The hot server counters are written by every serving goroutine; without
// padding they would share lines and turn per-batch folds into cross-core
// coherence traffic (false sharing).
type padCounter struct {
	n atomic.Int64
	_ [56]byte
}

// flushTimeout bounds the final acknowledgement flush of a closing
// connection, so a dead peer cannot hold shutdown hostage.
const flushTimeout = 5 * time.Second

// Server serves one container over TCP. Start it with Start; stop it with
// Shutdown. All methods are safe for concurrent use.
type Server struct {
	cont container.Container
	cfg  Config
	ln   net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	active   atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64
	// Hot shared counters, each alone on its cache line (padCounter).
	// Connections count ops locally and fold into these once per batch, so
	// at multi-core connection counts the counters cost one atomic add per
	// batch per opcode touched — not one per op — and never false-share.
	served   [proto.OpTrace + 1]padCounter
	flushes  padCounter
	batches  padCounter
	batchOps padCounter
	// batchHist[i] counts batches whose size lies in (2^(i-1), 2^i]; the
	// /metrics batch-size distribution comes from it. One add per batch.
	batchHist [batchHistBuckets]atomic.Int64
	protoErrs atomic.Int64

	// The observability plane: the registry every instrument lives in, the
	// per-op latency histograms (GET/SET/DEL; batch-grained — see
	// observeFlush), the slow-op trace ring, and the capture threshold in
	// nanoseconds (<= 0 disables capture). stripeSeq deals connections onto
	// histogram stripes.
	reg       *obs.Registry
	opLat     [proto.OpTrace + 1]*obs.Histogram
	trace     *obs.TraceRing
	slowNs    int64
	stripeSeq atomic.Int64

	// Durability state; dur is nil on a purely in-memory server.
	dur       *Durability
	faultC    chan struct{}
	faultOnce sync.Once
	faultErr  error // written once before faultC closes
}

// Start binds the listener and begins accepting connections onto cont. The
// returned Server is already serving; Addr reports the bound address.
func Start(cont container.Container, cfg Config) (*Server, error) {
	if cont == nil {
		return nil, errors.New("server: nil container")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cont:   cont,
		cfg:    cfg,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		dur:    cfg.Durable,
		faultC: make(chan struct{}),
	}
	s.initObs()
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// initObs builds the observability plane: the registry (the configured one
// or a fresh private one), the per-op latency histograms, the slow-op trace
// ring, the WAL recorders, and the pull-based counters and gauges over
// state the server already maintains. Registration happens once here, at
// start; the serving path only ever records.
func (s *Server) initObs() {
	reg := s.cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.reg = reg
	s.trace = obs.NewTraceRing(s.cfg.TraceDepth)
	switch {
	case s.cfg.SlowOpThreshold == 0:
		s.slowNs = int64(DefaultSlowOp)
	case s.cfg.SlowOpThreshold > 0:
		s.slowNs = int64(s.cfg.SlowOpThreshold)
	}

	for _, op := range hotOps {
		s.opLat[op] = reg.Histogram("kv_op_latency_ns", latStripes, obs.Label{Key: "op", Value: op.String()})
	}
	reg.GaugeFunc("kv_server_conns_active", s.active.Load)
	reg.CounterFunc("kv_server_conns_accepted_total", s.accepted.Load)
	reg.CounterFunc("kv_server_conns_rejected_total", s.rejected.Load)
	for op := proto.OpPing; op <= proto.OpTrace; op++ {
		op := op
		reg.CounterFunc("kv_server_ops_total",
			func() int64 { return s.served[op].n.Load() },
			obs.Label{Key: "op", Value: op.String()})
	}
	reg.CounterFunc("kv_server_flushes_total", s.flushes.n.Load)
	reg.CounterFunc("kv_server_batches_total", s.batches.n.Load)
	reg.CounterFunc("kv_server_batched_ops_total", s.batchOps.n.Load)
	reg.CounterFunc("kv_server_proto_errors_total", s.protoErrs.Load)
	reg.CounterFunc("kv_server_slow_ops_total", func() int64 { return int64(s.trace.Count()) })
	reg.GaugeFunc("kv_container_size", func() int64 { return int64(s.cont.Size()) })
	reg.CounterFunc("kv_engine_ops_total", func() int64 { return s.cont.EngineStats().Ops })
	reg.CounterFunc("kv_engine_retries_total", func() int64 { return s.cont.EngineStats().Retries() })
	reg.CounterFunc("kv_engine_llx_fails_total", func() int64 { return s.cont.EngineStats().LLXFails })
	reg.CounterFunc("kv_engine_scx_fails_total", func() int64 { return s.cont.EngineStats().SCXFails })

	// Epoch-reclamation gauges: every session in the process announces in
	// the Default domain, so the progress story — epoch moving, no stale
	// announcement, bounded limbo — is one scrape away.
	d := reclaim.Default
	reg.GaugeFunc("kv_reclaim_epoch", func() int64 { return int64(d.Epoch()) })
	reg.GaugeFunc("kv_reclaim_epoch_lag", func() int64 { return int64(d.Gauges().OldestLag) })
	reg.GaugeFunc("kv_reclaim_active_announcements", func() int64 { return int64(d.Gauges().ActiveSlots) })
	reg.GaugeFunc("kv_reclaim_limbo", func() int64 { return d.Gauges().Limbo })
	reg.GaugeFunc("kv_reclaim_parked", func() int64 { return d.Gauges().Parked })
	reg.GaugeFunc("kv_reclaim_free", func() int64 { return d.Gauges().Free })
	reg.CounterFunc("kv_reclaim_advances_total", func() int64 { return int64(d.Advances()) })
	reg.CounterFunc("kv_reclaim_advance_attempts_total", func() int64 { return int64(d.Gauges().Attempts) })
	reg.CounterFunc("kv_reclaim_scavenged_total", func() int64 { return int64(d.Scavenged()) })

	if s.dur != nil {
		s.dur.Log.SetHists(wal.Hists{
			Fsync:  reg.Histogram("kv_wal_fsync_ns", 1).Recorder(0),
			Commit: reg.Histogram("kv_wal_commit_ns", 1).Recorder(0),
			Batch:  reg.Histogram("kv_wal_commit_records", 1).Recorder(0),
		})
		lm := s.dur.Log.Metrics
		reg.CounterFunc("kv_wal_appends_total", func() int64 { return lm().Appends })
		reg.CounterFunc("kv_wal_commits_total", func() int64 { return lm().Commits })
		reg.CounterFunc("kv_wal_fsyncs_total", func() int64 { return lm().Fsyncs })
		reg.CounterFunc("kv_wal_rotations_total", func() int64 { return lm().Rotations })
		reg.GaugeFunc("kv_wal_durable_lsn", func() int64 { return int64(lm().Durable) })
	}
}

// hotOps are the opcodes with per-op latency histograms: the data-path trio
// whose latency a client actually feels.
var hotOps = [...]proto.Op{proto.OpGet, proto.OpSet, proto.OpDel}

// Registry returns the server's metrics registry (for HTTP handlers and
// tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Size returns the served container's Size — exact once Shutdown has
// returned, weakly consistent while serving.
func (s *Server) Size() int { return s.cont.Size() }

// Container returns the served container, for metrics endpoints and tests.
func (s *Server) Container() container.Container { return s.cont }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	// Transient accept failures (EMFILE under an fd squeeze, ECONNABORTED)
	// must not kill the listener forever: back off and retry, resetting on
	// success. Only a closed listener (shutdown) ends the loop.
	backoff := 5 * time.Millisecond
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.draining.Load() {
				return
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		if n := s.active.Add(1); s.cfg.MaxConns > 0 && n > int64(s.cfg.MaxConns) {
			s.rejected.Add(1)
			if !s.register(c) {
				s.active.Add(-1)
				c.Close()
				continue
			}
			go s.rejectConn(c)
			continue
		}
		if !s.register(c) {
			s.active.Add(-1)
			c.Close()
			continue
		}
		s.accepted.Add(1)
		go s.serve(c)
	}
}

// rejectConn tells an over-limit client why it is being dropped. Best
// effort, bounded by a write deadline; registered like any connection so
// Shutdown waits for (or force-closes) it.
func (s *Server) rejectConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.active.Add(-1)
	defer s.untrack(c)
	defer c.Close()
	c.SetWriteDeadline(time.Now().Add(flushTimeout))
	w := proto.NewWriter(c, 64)
	w.WriteErr("server: connection limit reached")
	w.Flush()
}

// register atomically checks draining and enrolls the connection in the
// tracked set and the drain WaitGroup. The mutex makes registration and
// Shutdown's drain mutually exclusive: a connection registered before
// Shutdown takes the lock is both kicked and awaited; one that loses the
// race is refused here — so connWG.Add can never race connWG.Wait and no
// serve goroutine outlives Shutdown.
func (s *Server) register(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// pastDeadline unblocks a pending read immediately and permanently: Go
// deadlines are absolute, so once set, every future socket read fails while
// already-buffered frames remain parseable.
var pastDeadline = time.Unix(1, 0)

// connState is one connection's loop state: its pinned session, its two
// reusable buffers, the reusable decoded-request batch, and the durability
// bookkeeping — the highest log sequence number this connection appended
// but has not yet committed, whether the connection went dead (its buffered
// replies must never reach the socket, because they would acknowledge
// writes that are not durable), and the current batch's applied-but-
// unappended records plus the barrier partitions held for them.
type connState struct {
	sess  container.Session
	r     *proto.Reader
	w     *proto.Writer
	batch []proto.Request
	// served counts ops locally; foldCounters merges it into the shared
	// padded counters once per flush boundary instead of once per op.
	served [proto.OpTrace + 1]int64
	// Latency plane, all connection-local: lat holds this connection's
	// stripe of each hot op's histogram (assigned once at accept), latPend
	// counts ops awaiting the flush-boundary RecordN, t0/timed bracket the
	// current flush interval (first batch decode → reply flush), commitWait
	// is the interval's WAL group-commit wait, and lastRetries is the
	// engine-retry watermark from the previous slow-op sample.
	lat         [proto.OpTrace + 1]*obs.Recorder
	latPend     [proto.OpTrace + 1]int64
	t0          time.Time
	timed       bool
	commitWait  int64
	lastRetries int64
	pend        uint64
	dead        bool
	// Durable batch state (nil/empty on an in-memory server): records
	// applied this batch awaiting the batch append, and the barrier
	// partitions read-locked since the batch's first write. held is the
	// dedupe index over parts.
	recs  []wal.Record
	held  []bool
	parts []int
}

// serve owns one connection for its whole life: one goroutine, one pinned
// Session, one Reader, one Writer. The loop is the hot path of the whole
// serving stack; in steady state it allocates nothing.
//
// The loop's unit of work is a batch, not a frame: ReadRequestBatch blocks
// for the first request and then drains every complete frame the socket
// already delivered, serveBatch applies them all inside one epoch guard and
// one WAL append, and the write buffer answers them with one flush when the
// read buffer runs dry.
func (s *Server) serve(c net.Conn) {
	defer s.connWG.Done()
	st := &connState{
		sess:  s.cont.NewSession(),
		r:     proto.NewReader(c, s.cfg.ReadBuf),
		w:     proto.NewWriter(c, s.cfg.WriteBuf),
		batch: make([]proto.Request, 0, 64),
	}
	if s.dur != nil {
		n := s.dur.Barrier.Shards()
		st.recs = make([]wal.Record, 0, 64)
		st.held = make([]bool, n)
		st.parts = make([]int, 0, n)
	}
	// Deal this connection onto one stripe of each hot op's latency
	// histogram: concurrent flushes then usually record on distinct cache
	// lines, and the scrape folds the stripes back together.
	stripe := int(s.stripeSeq.Add(1))
	for _, op := range hotOps {
		st.lat[op] = s.opLat[op].Recorder(stripe)
	}
	st.lastRetries = s.cont.EngineStats().Retries()

	for {
		if s.cfg.IdleTimeout > 0 && st.r.Buffered() == 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			if s.draining.Load() {
				// Close the arm/kick race: if Shutdown's kick landed between
				// the draining check and our re-arm, re-kick ourselves.
				c.SetReadDeadline(pastDeadline)
			}
		}
		var err error
		st.batch, err = st.r.ReadRequestBatch(st.batch[:0], maxBatch)
		if n := len(st.batch); n > 0 {
			if !st.timed {
				// Open the flush interval at the first decoded batch; it
				// closes in observeFlush when the replies are flushed.
				st.t0 = time.Now()
				st.timed = true
			}
			s.batches.n.Add(1)
			s.batchOps.n.Add(int64(n))
			s.batchHist[bits.Len(uint(n-1))].Add(1)
			if herr := s.serveBatch(st); herr != nil {
				break
			}
		}
		if err != nil {
			if errors.Is(err, proto.ErrMalformed) {
				// The stream cannot be resynchronized; tell the peer why
				// before hanging up. Requests decoded before the bad frame
				// were served above, and their buffered replies still go
				// out below — after their records are committed, if
				// durable.
				s.protoErrs.Add(1)
				if s.dur == nil || s.commitPend(st) == nil {
					st.w.WriteErr(err.Error())
				}
			}
			break
		}
		// Reply-batching rule: flush only when the read buffer runs dry —
		// every request of a pipelined batch lands its reply in the write
		// buffer first, then one flush answers the whole batch. With
		// durability on, the batch's records are group-committed first:
		// one fsync, then one flush, covers the whole batch. While
		// draining, frames already buffered are still served (they were
		// received before the drain), and the connection closes once the
		// buffer empties.
		if st.r.Buffered() == 0 {
			if s.dur != nil {
				cw := time.Now()
				if s.commitPend(st) != nil {
					break
				}
				st.commitWait += int64(time.Since(cw))
			}
			s.foldCounters(st)
			// Record before the flush hits the socket: once the client has
			// the replies, the scrape already has the samples.
			s.observeFlush(st)
			s.flushes.n.Add(1)
			if err := st.w.Flush(); err != nil {
				break
			}
			if s.draining.Load() {
				break
			}
			// The batch is answered and the connection is about to block on
			// the socket for an unbounded time. Quiesce the session so its
			// (amortized, still-published) epoch announcement does not go
			// stale while we sleep — an idle connection would otherwise
			// delay memory reclamation for every structure in the process.
			// The batch guard is closed here by construction (serveBatch
			// brackets it), which Quiesce requires.
			st.sess.Quiesce()
		}
	}

	// Exit path, in conservation order: commit any records still pending,
	// flush acknowledgements of every applied (and now durable) operation,
	// then close the socket, then release the Session (returning its pooled
	// Handle and letting the reclamation epoch advance past this goroutine).
	// A dead connection skips the flush: its buffered replies would
	// acknowledge writes the log could not make durable. serveBatch seals
	// every batch before returning, so no barrier partition is held here.
	s.foldCounters(st)
	s.observeFlush(st)
	if s.dur != nil && !st.dead {
		s.commitPend(st)
	}
	if !st.dead {
		c.SetWriteDeadline(time.Now().Add(flushTimeout))
		s.flushes.n.Add(1)
		st.w.Flush()
	}
	c.Close()
	st.sess.Close()
	s.untrack(c)
	s.active.Add(-1)
}

// replyHeadroom is the largest non-bulk reply frame (13 bytes) with margin;
// see the pre-commit guard in serveBatch.
const replyHeadroom = 32

// opFunc is one entry of the flat dispatch table: apply one request to the
// connection and buffer its reply.
type opFunc func(s *Server, st *connState, key int64) error

// opTable dispatches by opcode with one indexed load instead of a switch.
// Indexing by req.Op without a bounds check beyond the array's own is safe
// because the parser rejects opcodes outside [OpPing, OpTrace].
var opTable = [proto.OpTrace + 1]opFunc{
	proto.OpPing:  (*Server).opPing,
	proto.OpGet:   (*Server).opGet,
	proto.OpSet:   (*Server).opSet,
	proto.OpDel:   (*Server).opDel,
	proto.OpSize:  (*Server).opSize,
	proto.OpStats: (*Server).opStats,
	proto.OpCount: (*Server).opCount,
	proto.OpTrace: (*Server).opTrace,
}

func (s *Server) opPing(st *connState, _ int64) error {
	return st.w.WritePong()
}

func (s *Server) opGet(st *connState, key int64) error {
	return st.w.WriteBool(st.sess.Get(int(key)))
}

func (s *Server) opSet(st *connState, key int64) error {
	if s.dur != nil {
		return s.applyDurable(st, wal.OpInsert, key)
	}
	return st.w.WriteBool(st.sess.Insert(int(key)))
}

func (s *Server) opDel(st *connState, key int64) error {
	if s.dur != nil {
		return s.applyDurable(st, wal.OpDelete, key)
	}
	return st.w.WriteBool(st.sess.Delete(int(key)))
}

func (s *Server) opSize(st *connState, _ int64) error {
	return st.w.WriteInt(int64(s.cont.Size()))
}

func (s *Server) opStats(st *connState, _ int64) error {
	s.foldCounters(st) // STATS should see this batch's ops
	var b strings.Builder
	s.WriteMetrics(&b)
	return st.w.WriteBulk([]byte(b.String()))
}

func (s *Server) opCount(st *connState, key int64) error {
	if n := st.sess.Count(int(key)); n >= 0 {
		return st.w.WriteInt(int64(n))
	}
	return st.w.WriteErr("server: container cannot count a single key")
}

func (s *Server) opTrace(st *connState, _ int64) error {
	var b strings.Builder
	s.WriteTrace(&b)
	return st.w.WriteBulk([]byte(b.String()))
}

// serveBatch applies one decoded batch and buffers every reply. The whole
// batch runs inside a single epoch guard: with the announcement already
// published, the per-op guards inside the session collapse to depth-counter
// bumps, so epoch protection costs one Enter/Exit per batch. Replies are
// buffered before the batch returns, so an applied operation can never miss
// its acknowledgement — and with durability on, a reply never reaches the
// socket before its record's commit group is fsynced (the pre-commit guard
// below seals and commits ahead of any reply write that could overflow the
// buffer into an implicit flush). Every return path seals the batch first:
// barrier partitions are never held past serveBatch.
func (s *Server) serveBatch(st *connState) error {
	if err := st.w.Err(); err != nil {
		// The ack path is broken (a flush failed): applying more operations
		// would change state this connection can never acknowledge. Stop
		// immediately; everything acked so far was applied, everything
		// applied was flushed before the writer died or dies with the
		// conservation accounting intact.
		return err
	}
	st.sess.BatchStart()
	for i := range st.batch {
		req := st.batch[i]
		st.served[req.Op]++
		if s.dur != nil && (st.pend > 0 || len(st.recs) > 0) {
			// A full write buffer auto-flushes inside the reply write,
			// which would put acks on the wire before their records are
			// durable. Seal and commit first when this reply might not fit
			// (the bulk STATS and TRACE replies always force it; the keyed
			// replies are covered by replyHeadroom). The epoch guard is
			// dropped around the fsync so a slow disk never pins the
			// reclamation epoch.
			if req.Op == proto.OpStats || req.Op == proto.OpTrace || st.w.Buffered()+replyHeadroom > st.w.Cap() {
				st.sess.BatchEnd()
				err := s.sealBatch(st)
				if err == nil {
					err = s.commitPend(st)
				}
				if err != nil {
					return err
				}
				st.sess.BatchStart()
			}
		}
		if err := opTable[req.Op](s, st, req.Key); err != nil {
			st.sess.BatchEnd()
			if s.dur != nil {
				s.sealBatch(st)
			}
			return err
		}
	}
	st.sess.BatchEnd()
	if s.dur != nil {
		return s.sealBatch(st)
	}
	return nil
}

// foldCounters merges the connection's local per-op counts into the shared
// padded counters. Called at flush boundaries, on STATS, and at connection
// exit — so shared-counter traffic is per batch, not per op, and /metrics
// lags a connection's in-flight batch by at most one flush.
func (s *Server) foldCounters(st *connState) {
	for op := range st.served {
		if n := st.served[op]; n != 0 {
			s.served[op].n.Add(n)
			st.latPend[op] += n
			st.served[op] = 0
		}
	}
}

// observeFlush closes the connection's current flush interval: it records
// the interval's duration into each hot op's latency histogram (batch-
// grained — every op in the interval gets the same sample, which is exactly
// the latency the pipelined client observed) and, when the interval crossed
// the slow threshold, captures its ops in the trace ring. Runs at flush
// boundaries only, after foldCounters; a mid-batch STATS fold accumulates
// into latPend without recording, so each op is recorded exactly once.
func (s *Server) observeFlush(st *connState) {
	if !st.timed {
		return
	}
	dt := int64(time.Since(st.t0))
	for _, op := range hotOps {
		if n := st.latPend[op]; n > 0 {
			if r := st.lat[op]; r != nil {
				r.RecordN(dt, n)
			}
		}
	}
	if s.slowNs > 0 && dt >= s.slowNs {
		s.traceSlow(st, dt)
	}
	for op := range st.latPend {
		st.latPend[op] = 0
	}
	st.commitWait = 0
	st.timed = false
}

// traceSlow records up to slowTracePerFlush of the slow interval's keyed ops
// into the trace ring. The engine-retry count is a per-container total, so
// the retries attributed to this interval are the delta since this
// connection's previous slow sample — an approximation (other connections
// retry too) that is cheap and still points at contention storms.
func (s *Server) traceSlow(st *connState, dt int64) {
	retries := s.cont.EngineStats().Retries()
	dRetries := retries - st.lastRetries
	st.lastRetries = retries
	now := time.Now().UnixNano()
	n := 0
	for i := range st.batch {
		req := st.batch[i]
		if !req.Op.Keyed() {
			continue
		}
		s.trace.Record(obs.TraceEntry{
			When:       now,
			Op:         int64(req.Op),
			Key:        req.Key,
			Dur:        dt,
			Retries:    dRetries,
			CommitWait: st.commitWait,
		})
		if n++; n >= slowTracePerFlush {
			break
		}
	}
	if n == 0 {
		// The slow interval had no keyed ops (PING/STATS/SIZE only); record
		// one entry anyway so the stall itself is visible.
		s.trace.Record(obs.TraceEntry{
			When: now, Op: int64(proto.OpPing), Key: -1,
			Dur: dt, Retries: dRetries, CommitWait: st.commitWait,
		})
	}
}

// Shutdown stops the server gracefully: it stops accepting, interrupts
// every connection's pending read, lets each connection finish serving the
// requests it has already received (acknowledgements flushed), then closes
// sockets and sessions. It returns nil once every connection has drained,
// or ctx.Err() after force-closing the stragglers when the context
// expires. After Shutdown returns, Size is exact and stable.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(pastDeadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.acceptWG.Wait()
	return err
}

// Metrics is a point-in-time snapshot of the server's own counters (the
// container's engine counters are reported separately; see WriteMetrics).
type Metrics struct {
	ActiveConns   int64
	AcceptedConns int64
	RejectedConns int64
	ServedByOp    map[string]int64
	ServedTotal   int64
	Flushes       int64
	ProtoErrors   int64
	// Batches counts decoded request batches; BatchedOps is the total of
	// their sizes (avg batch size = BatchedOps/Batches, flushes per op =
	// Flushes/ServedTotal — the two amortization ratios the batched hot
	// path exists to improve). BatchHist[i] counts batches whose size lies
	// in (2^(i-1), 2^i].
	Batches    int64
	BatchedOps int64
	BatchHist  [batchHistBuckets]int64
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		ActiveConns:   s.active.Load(),
		AcceptedConns: s.accepted.Load(),
		RejectedConns: s.rejected.Load(),
		Flushes:       s.flushes.n.Load(),
		ProtoErrors:   s.protoErrs.Load(),
		Batches:       s.batches.n.Load(),
		BatchedOps:    s.batchOps.n.Load(),
		ServedByOp:    make(map[string]int64),
	}
	for op := proto.OpPing; op <= proto.OpTrace; op++ {
		if n := s.served[op].n.Load(); n > 0 {
			m.ServedByOp[op.String()] = n
		}
		m.ServedTotal += s.served[op].n.Load()
	}
	for i := range s.batchHist {
		m.BatchHist[i] = s.batchHist[i].Load()
	}
	return m
}

// WriteMetrics renders the full text metrics dump: server connection and
// op counters, the container's size and template-engine counters, the
// per-operation breakdown, and — when the container is sharded — the
// per-shard table. This is what the STATS command and cmd/server's
// -metrics endpoint serve.
func (s *Server) WriteMetrics(w io.Writer) {
	m := s.Metrics()
	fmt.Fprintf(w, "server: conns active=%d accepted=%d rejected=%d\n",
		m.ActiveConns, m.AcceptedConns, m.RejectedConns)
	fmt.Fprintf(w, "server: ops served=%d flushes=%d proto_errors=%d\n",
		m.ServedTotal, m.Flushes, m.ProtoErrors)
	if m.Batches > 0 {
		avg := float64(m.BatchedOps) / float64(m.Batches)
		fpo := 0.0
		if m.ServedTotal > 0 {
			fpo = float64(m.Flushes) / float64(m.ServedTotal)
		}
		fmt.Fprintf(w, "server: batches=%d batched_ops=%d avg_batch=%.2f flushes_per_op=%.4f\n",
			m.Batches, m.BatchedOps, avg, fpo)
		// Batch-size distribution, log2 buckets: "le<N>=<count>" counts
		// batches of at most N requests (and more than the previous bucket).
		fmt.Fprintf(w, "server: batch_size_hist")
		for i, n := range m.BatchHist {
			if n > 0 {
				fmt.Fprintf(w, " le%d=%d", 1<<i, n)
			}
		}
		fmt.Fprintln(w)
	}
	ops := make([]string, 0, len(m.ServedByOp))
	for op := range m.ServedByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(w, "server: op %-5s %d\n", op, m.ServedByOp[op])
	}
	if s.dur != nil {
		lm := s.dur.Log.Metrics()
		fmt.Fprintf(w, "wal: appends=%d commits=%d fsyncs=%d rotations=%d segments=%d last_lsn=%d durable_lsn=%d\n",
			lm.Appends, lm.Commits, lm.Fsyncs, lm.Rotations, lm.Segments, lm.LastLSN, lm.Durable)
		if err := s.Fault(); err != nil {
			fmt.Fprintf(w, "wal: FAULT %v\n", err)
		}
	}
	fmt.Fprintf(w, "container: size=%d\n", s.cont.Size())
	eng := s.cont.EngineStats()
	fmt.Fprintf(w, "engine: ops=%d attempts=%d retries=%d llx_fails=%d scx_fails=%d\n",
		eng.Ops, eng.Attempts, eng.Retries(), eng.LLXFails, eng.SCXFails)
	g := reclaim.Default.Gauges()
	fmt.Fprintf(w, "reclaim: epoch=%d lag=%d active=%d overflow=%d advances=%d attempts=%d scavenged=%d limbo=%d parked=%d free=%d\n",
		g.Epoch, g.OldestLag, g.ActiveSlots, g.Overflow, g.Advances, g.Attempts, g.Scavenged, g.Limbo, g.Parked, g.Free)
	s.reg.WriteHistText(w)

	if byOp := s.cont.StatsByOp(); len(byOp) > 0 {
		tb := stats.NewTable("engine contention by operation",
			"op", "ops", "attempts", "retries/op", "llx-fail%", "scx-fail%")
		names := make([]string, 0, len(byOp))
		for name := range byOp {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := byOp[name]
			tb.AddRow(append([]any{name},
				stats.ContentionRow(c.Ops, c.Attempts, c.LLXFails, c.SCXFails)...)...)
		}
		tb.WriteTo(w)
	}

	if sh, ok := s.cont.(*shard.Sharded); ok {
		tb := stats.NewTable("contention by shard",
			"shard", "size", "ops", "attempts", "retries/op", "llx-fail%", "scx-fail%")
		sh.ForEachShard(func(i int, c container.Container) {
			cnt := c.EngineStats()
			tb.AddRow(append([]any{i, c.Size()},
				stats.ContentionRow(cnt.Ops, cnt.Attempts, cnt.LLXFails, cnt.SCXFails)...)...)
		})
		tb.WriteTo(w)
	}
}

// WriteTrace renders the slow-op trace ring, newest first: one header line
// (captures so far, threshold, ring capacity) and one line per surviving
// entry. This is what the TRACE command and the /trace endpoint serve.
func (s *Server) WriteTrace(w io.Writer) {
	fmt.Fprintf(w, "trace: slow_ops=%d threshold=%s depth=%d\n",
		s.trace.Count(), time.Duration(s.slowNs), s.trace.Cap())
	entries := s.trace.Snapshot(make([]obs.TraceEntry, 0, s.trace.Cap()))
	now := time.Now().UnixNano()
	for _, e := range entries {
		age := time.Duration(now - e.When).Round(time.Millisecond)
		fmt.Fprintf(w, "trace: #%d age=%s op=%s key=%d dur=%s commit_wait=%s retries=%d\n",
			e.Seq, age, proto.Op(e.Op), e.Key,
			time.Duration(e.Dur).Round(time.Microsecond),
			time.Duration(e.CommitWait).Round(time.Microsecond), e.Retries)
	}
}
