package server_test

// The observability-plane integration test: drive a durable server over a
// real socket, then check that every layer's instruments actually moved —
// op latency histograms, WAL fsync/commit histograms, reclaim gauges — via
// the Prometheus exposition endpoint (round-tripped through obs.ParseProm),
// the STATS text dump, and the slow-op TRACE command.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/obs"
	"pragmaprim/internal/server"
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/wal"
)

// startObs starts a durable in-memory-FS server with a 1ns slow threshold,
// so every flush interval lands in the trace ring.
func startObs(tb testing.TB) (*server.Server, *wal.Log) {
	tb.Helper()
	c := container.Multiset(multiset.New[int]())
	l, _, err := snapshot.Recover(c, "wal", wal.Options{FS: wal.NewMemFS()})
	if err != nil {
		tb.Fatalf("recover: %v", err)
	}
	s, err := server.Start(c, server.Config{
		Durable:         &server.Durability{Log: l, Barrier: snapshot.NewBarrier(1)},
		SlowOpThreshold: time.Nanosecond,
	})
	if err != nil {
		l.Close()
		tb.Fatalf("start: %v", err)
	}
	return s, l
}

func TestServerObsPlane(t *testing.T) {
	s, l := startObs(t)
	defer l.Close()
	defer shutdownNow(t, s)

	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	const depth, rounds = 64, 8
	for r := 0; r < rounds; r++ {
		pipelinedRound(t, cl, depth)
	}
	// The replies are in hand, and observeFlush runs before the reply flush
	// hits the socket — so every sample below is already recorded.
	wantOps := int64(rounds * depth / 2)

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Prometheus exposition: fetch, parse with the in-repo parser, and
	// check the tentpole families from every layer.
	fams := scrapeProm(t, srv.URL+"/metrics?format=prom")
	for _, op := range []string{"GET", "SET"} {
		f := fams["kv_op_latency_ns"]
		if f == nil {
			t.Fatal("kv_op_latency_ns family missing")
		}
		h, err := f.Hist(map[string]string{"op": op})
		if err != nil {
			t.Fatalf("kv_op_latency_ns{op=%s}: %v", op, err)
		}
		if got := h.Count(); got != wantOps {
			t.Errorf("kv_op_latency_ns{op=%s} count = %d, want %d", op, got, wantOps)
		}
		if h.Quantile(50) <= 0 {
			t.Errorf("kv_op_latency_ns{op=%s} p50 = %d, want > 0", op, h.Quantile(50))
		}
	}
	if f := fams["kv_wal_fsync_ns"]; f == nil {
		t.Error("kv_wal_fsync_ns family missing")
	} else if h, err := f.Hist(nil); err != nil {
		t.Errorf("kv_wal_fsync_ns: %v", err)
	} else if h.Count() == 0 {
		t.Error("kv_wal_fsync_ns recorded no fsyncs under a durable load")
	}
	if f := fams["kv_wal_commit_records"]; f == nil {
		t.Error("kv_wal_commit_records family missing")
	} else if h, err := f.Hist(nil); err != nil {
		t.Errorf("kv_wal_commit_records: %v", err)
	} else if h.Count() == 0 {
		t.Error("kv_wal_commit_records recorded no commit groups")
	}
	if f := fams["kv_reclaim_epoch"]; f == nil {
		t.Error("kv_reclaim_epoch family missing")
	}
	if f := fams["kv_server_ops_total"]; f == nil {
		t.Error("kv_server_ops_total family missing")
	} else if v, ok := f.Value(map[string]string{"op": "SET"}); !ok || int64(v) != wantOps {
		t.Errorf("kv_server_ops_total{op=SET} = %v (ok=%v), want %d", v, ok, wantOps)
	}

	// The text dump carries the same plane: the reclaim gauge line and the
	// folded histogram summaries.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"reclaim: epoch=", "kv_op_latency_ns{op=\"SET\"}", "kv_wal_fsync_ns"} {
		if !strings.Contains(stats, want) {
			t.Errorf("STATS dump missing %q:\n%s", want, stats)
		}
	}

	// With a 1ns threshold every flush interval is slow, so TRACE must hold
	// recent keyed ops.
	trace, err := cl.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(trace, "trace: slow_ops=") {
		t.Fatalf("TRACE missing header:\n%s", trace)
	}
	if !strings.Contains(trace, "op=SET") && !strings.Contains(trace, "op=GET") {
		t.Errorf("TRACE holds no keyed ops:\n%s", trace)
	}
	if strings.Contains(trace, "slow_ops=0") {
		t.Errorf("TRACE captured nothing at a 1ns threshold:\n%s", trace)
	}

	// The /trace endpoint serves the same bytes.
	if body := httpGet(t, srv.URL+"/trace"); !strings.Contains(body, "trace: slow_ops=") {
		t.Errorf("/trace missing header:\n%s", body)
	}
	// And the plain /metrics endpoint matches the STATS dump's shape.
	if body := httpGet(t, srv.URL+"/metrics"); !strings.Contains(body, "server: conns active=") {
		t.Errorf("/metrics missing server line:\n%s", body)
	}
}

func httpGet(tb testing.TB, url string) string {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

func scrapeProm(tb testing.TB, url string) map[string]*obs.Family {
	tb.Helper()
	body := httpGet(tb, url)
	fams, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		tb.Fatalf("ParseProm: %v\n%s", err, body)
	}
	return fams
}
