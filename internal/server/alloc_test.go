package server_test

import (
	"context"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
	"pragmaprim/internal/wal"
)

// pipelinedRound sends one batch of alternating SET/GET over a small key
// set and drains the replies. The client side is allocation-free by
// construction (reused Client buffers, no per-op values escape), so
// AllocsPerRun over this round measures the server's request→apply→reply
// path plus nothing else.
func pipelinedRound(tb testing.TB, cl *client.Client, depth int) {
	tb.Helper()
	for i := 0; i < depth/2; i++ {
		key := int64(i & 7)
		if err := cl.Send(proto.Request{Op: proto.OpSet, Key: key}); err != nil {
			tb.Fatalf("send set: %v", err)
		}
		if err := cl.Send(proto.Request{Op: proto.OpGet, Key: key}); err != nil {
			tb.Fatalf("send get: %v", err)
		}
	}
	if err := cl.Flush(); err != nil {
		tb.Fatalf("flush: %v", err)
	}
	for i := 0; i < depth; i++ {
		if _, err := cl.Recv(); err != nil {
			tb.Fatalf("recv: %v", err)
		}
	}
}

// TestServerHotPathAllocFree is the acceptance pin for the serving stack:
// in steady state, a pipelined SET/GET batch allocates at most 1 alloc/op
// across the whole process — client, wire, server loop, and the container
// underneath (whose update path is 0 allocs warm since PR 4). Everything
// outside the connections' reusable read/write buffers is accounted here;
// only socket syscalls are outside the measurement.
func TestServerHotPathAllocFree(t *testing.T) {
	s, err := server.Start(container.Multiset(multiset.New[int]()), server.Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer shutdownNow(t, s)

	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const depth = 128
	// Warm up: populate the keys (so SET takes the count-bump path and GET
	// hits), fill the handle pools, freelists and epoch slots, and let the
	// runtime's network poller settle.
	for i := 0; i < 20; i++ {
		pipelinedRound(t, cl, depth)
	}
	allocs := testing.AllocsPerRun(50, func() { pipelinedRound(t, cl, depth) })
	perOp := allocs / depth
	t.Logf("pipelined SET/GET: %.3f allocs per %d-op batch = %.4f allocs/op", allocs, depth, perOp)
	if perOp > 1 {
		t.Errorf("server hot path allocates %.4f allocs/op, want <= 1", perOp)
	}
}

// TestServerHotPathAllocFreeDurableMultiConn extends the pin to the batched
// durable path under connection concurrency: two pipelined connections, each
// running the depth-128 SET/GET round with a WAL underneath, still amortize
// to zero steady-state allocations per op. This is the whole-stack pin for
// the batch machinery — per-connection batch slices, the record accumulator,
// barrier partition tracking and the group-commit rendezvous are all reused,
// so adding a second connection must add no per-op garbage.
func TestServerHotPathAllocFreeDurableMultiConn(t *testing.T) {
	s, l := startDurable(t, wal.NewMemFS(), "wal")
	defer l.Close()
	defer shutdownNow(t, s)

	const conns, depth = 2, 128
	cls := make([]*client.Client, conns)
	for i := range cls {
		cl, err := client.Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer cl.Close()
		cls[i] = cl
	}
	// Flush every connection's batch before draining any replies, so the
	// server really serves the connections concurrently (their batches are
	// in flight together and share commit groups) while the measuring
	// goroutine stays single — AllocsPerRun needs that.
	round := func() {
		for _, cl := range cls {
			for i := 0; i < depth/2; i++ {
				key := int64(i & 7)
				if err := cl.Send(proto.Request{Op: proto.OpSet, Key: key}); err != nil {
					t.Fatalf("send set: %v", err)
				}
				if err := cl.Send(proto.Request{Op: proto.OpGet, Key: key}); err != nil {
					t.Fatalf("send get: %v", err)
				}
			}
			if err := cl.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
		}
		for _, cl := range cls {
			for i := 0; i < depth; i++ {
				if _, err := cl.Recv(); err != nil {
					t.Fatalf("recv: %v", err)
				}
			}
		}
	}
	for i := 0; i < 20; i++ {
		round()
	}
	allocs := testing.AllocsPerRun(50, round)
	perOp := allocs / (conns * depth)
	t.Logf("durable 2-conn SET/GET: %.3f allocs per %d-op round = %.4f allocs/op", allocs, conns*depth, perOp)
	if perOp > 1 {
		t.Errorf("durable multi-conn hot path allocates %.4f allocs/op, want <= 1", perOp)
	}
}

func testContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

func shutdownNow(tb testing.TB, s *server.Server) {
	tb.Helper()
	ctx, cancel := testContext()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		tb.Errorf("shutdown: %v", err)
	}
}

// BenchmarkServerPipelinedSetGet measures end-to-end pipelined throughput
// over a real loopback socket at depth 128; ns/op is per operation, not per
// batch.
func BenchmarkServerPipelinedSetGet(b *testing.B) {
	s, err := server.Start(container.Multiset(multiset.New[int]()), server.Config{})
	if err != nil {
		b.Fatalf("start: %v", err)
	}
	defer shutdownNow(b, s)
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const depth = 128
	pipelinedRound(b, cl, depth) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += depth {
		pipelinedRound(b, cl, depth)
	}
}
