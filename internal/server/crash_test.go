package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/wal"
)

// The crash test needs a real process to kill -9: TestMain re-execs the test
// binary as a durable server child when the marker env var is set.
const (
	crashChildEnv = "PRAGMAPRIM_CRASH_CHILD"
	crashDirEnv   = "PRAGMAPRIM_CRASH_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		crashChildMain(os.Getenv(crashDirEnv))
		return
	}
	os.Exit(m.Run())
}

// crashChildMain is the child process: a sharded durable server with a fast
// snapshot manager, recovered from dir, address published atomically as
// dir/addr. It exits 0 on SIGTERM after a clean drain, and exits on its own
// if the durability layer faults.
func crashChildMain(dir string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	// The child serves at GOMAXPROCS=4 so the kill -9 audit exercises the
	// batched path under real (or oversubscribed) multi-core scheduling.
	runtime.GOMAXPROCS(4)
	const shards = 4
	c := shard.New(shards, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
	b := snapshot.NewBarrier(shards)
	// Tiny segments and a fast snapshot cadence so a short run still
	// exercises rotation, snapshot save, and truncation under load.
	l, _, err := snapshot.Recover(c, dir, wal.Options{SegmentBytes: 1 << 16})
	if err != nil {
		fail(err)
	}
	s, err := server.Start(c, server.Config{
		Durable: &server.Durability{Log: l, Barrier: b},
	})
	if err != nil {
		fail(err)
	}
	mgr := snapshot.StartManager(c, b, l, wal.OS, dir, 50*time.Millisecond, nil)

	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(s.Addr().String()), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		fail(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case <-sig:
	case <-s.FaultC():
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fail(err)
	}
	mgr.Close()
	l.Close()
	if err := s.Fault(); err != nil {
		fail(err)
	}
	os.Exit(0)
}

// startCrashChild launches a fresh server incarnation over dir and waits for
// it to publish its address.
func startCrashChild(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(filepath.Join(dir, "addr"))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			return cmd, string(b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("child never published its address")
	return nil, ""
}

// TestServerCrashRecoveryConservation is the kill -9 acceptance test: load a
// durable server hard, SIGKILL the process mid-run, restart it over the same
// directory, and check per-key interval conservation — every key's recovered
// count lies in [acked - maybeDeleted, acked + maybeInserted], where the
// "maybe" windows are exactly the operations whose acknowledgements the
// crash swallowed. Anything outside that interval means an acked write was
// lost or a never-sent write materialized.
func TestServerCrashRecoveryConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kill -9s child processes")
	}
	dir := t.TempDir()
	cmd, addr := startCrashChild(t, dir)

	const (
		workers = 4
		keys    = 16
		depth   = 32
	)
	var (
		acked    [keys]int64 // net acked inserts-deletes: must survive
		maybeIns [keys]int64 // unacked sent inserts: may survive
		maybeDel [keys]int64 // unacked sent deletes: may have applied
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd := client.Redialer{Addr: addr, Opts: client.Options{
				DialTimeout: 2 * time.Second, ReadTimeout: 2 * time.Second,
			}}
			cl, err := rd.Dial()
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				type sentOp struct {
					key int64
					del bool
				}
				sent := make([]sentOp, 0, depth)
				abort := func(from int) {
					for _, op := range sent[from:] {
						if op.del {
							atomic.AddInt64(&maybeDel[op.key], 1)
						} else {
							atomic.AddInt64(&maybeIns[op.key], 1)
						}
					}
				}
				for i := 0; i < depth; i++ {
					op := sentOp{key: int64(rng.Intn(keys)), del: rng.Intn(3) == 0}
					code := proto.OpSet
					if op.del {
						code = proto.OpDel
					}
					sent = append(sent, op)
					if err := cl.Send(proto.Request{Op: code, Key: op.key}); err != nil {
						abort(0)
						return
					}
				}
				if err := cl.Flush(); err != nil {
					abort(0)
					return
				}
				for got := 0; got < len(sent); got++ {
					rep, err := cl.Recv()
					if err != nil {
						abort(got)
						return
					}
					if ok, err := rep.Bool(); err == nil && ok {
						if sent[got].del {
							atomic.AddInt64(&acked[sent[got].key], -1)
						} else {
							atomic.AddInt64(&acked[sent[got].key], 1)
						}
					}
				}
			}
		}(w)
	}

	time.Sleep(700 * time.Millisecond)         // let load, snapshots and rotation run
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatalf("kill -9: %v", err)
	}
	cmd.Wait()
	stop.Store(true)
	wg.Wait()

	// Restart over the same directory and audit the recovered state.
	cmd2, addr2 := startCrashChild(t, dir)
	cl, err := client.DialOptions(addr2, client.Options{
		DialTimeout: 2 * time.Second, ReadTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial recovered server: %v", err)
	}
	var total int64
	for k := 0; k < keys; k++ {
		n, err := cl.Count(k)
		if err != nil {
			t.Fatalf("count key %d: %v", k, err)
		}
		total += n
		lo, hi := acked[k]-maybeDel[k], acked[k]+maybeIns[k]
		if n < lo || n > hi {
			t.Errorf("key %d: recovered count %d outside conservation interval [%d, %d] (acked %d, maybeIns %d, maybeDel %d)",
				k, n, lo, hi, acked[k], maybeIns[k], maybeDel[k])
		}
	}
	size, err := cl.Size()
	if err != nil {
		t.Fatalf("size: %v", err)
	}
	if int64(size) != total {
		t.Errorf("recovered Size %d != sum of per-key counts %d", size, total)
	}
	t.Logf("recovered %d occurrences across %d keys after kill -9", size, keys)
	cl.Close()

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Errorf("recovered server did not drain cleanly: %v", err)
	}
}
