package server

import (
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/wal"
)

// Durability extends the server's conservation contract from acked ⇔
// applied to acked ⇔ durable. With it configured, every SET/DEL is applied
// under the snapshot barrier's read lock and its log record appended — as
// part of the batch's single WAL append — before that lock is released, so
// a snapshot sees apply and append together or not at all; the
// acknowledgement reaches the socket only after a commit group covering the
// record has been fsynced. Batching and group commit do the amortizing: a
// pipelined batch costs one barrier-lock round per touched partition, one
// WAL append and one fsync at its flush boundary, and concurrent
// connections share commit groups, so the hot path stays allocation-free
// and fsync-bounded per batch.
//
// On a log fault (fsync error, short write) the server degrades exactly as
// the contract demands: the faulting connection never flushes acks that are
// not durable, every connection stops applying once its writer or the log
// is dead, and the server self-drains — stop accepting, kick reads, report
// via Fault/FaultC. It never acks-then-loses.
type Durability struct {
	// Log is the open write-ahead log, positioned after recovery.
	Log *wal.Log
	// Barrier is the snapshot write barrier; its width must match the
	// served container's sharding (snapshot.NewBarrier).
	Barrier *snapshot.Barrier
}

// Fault returns the durability error that moved the server into drain, or
// nil. Meaningful once FaultC is closed.
func (s *Server) Fault() error {
	if s.dur == nil {
		return nil
	}
	select {
	case <-s.faultC:
		return s.faultErr
	default:
		return nil
	}
}

// FaultC returns a channel closed when the durability layer fails; the
// server is then draining itself and the process should Shutdown and exit.
// Nil-safe on a server without durability (never closed).
func (s *Server) FaultC() <-chan struct{} { return s.faultC }

// durFault records the first durability fault and starts a self-drain:
// stop accepting, interrupt pending reads, let every connection finish what
// it can still honestly ack. Shutdown remains the caller's job (and is
// idempotent with the drain started here).
func (s *Server) durFault(err error) {
	s.faultOnce.Do(func() {
		s.faultErr = err
		close(s.faultC)
		go func() {
			s.draining.Store(true)
			s.ln.Close()
			s.mu.Lock()
			for c := range s.conns {
				c.SetReadDeadline(pastDeadline)
			}
			s.mu.Unlock()
		}()
	})
}

// commitPend makes the connection's appended records durable. On failure
// the connection is marked dead — its buffered replies must never be
// flushed, because they would acknowledge writes that were just lost — and
// the server-wide fault drain starts.
func (s *Server) commitPend(st *connState) error {
	if st.pend == 0 {
		return nil
	}
	if err := s.dur.Log.Commit(st.pend); err != nil {
		st.dead = true
		s.durFault(err)
		return err
	}
	st.pend = 0
	return nil
}

// applyDurable is the durable mutation path, batched: the write is applied
// under its key's barrier partition read lock, but its log record is only
// accumulated — sealBatch appends the whole batch's records as one WAL
// batch before any partition lock is released. The apply+append pair stays
// atomic with respect to snapshot Take because the partition lock is held
// from the first apply touching it until after the batch append; Take locks
// one partition at a time, so holding several read locks across a batch
// cannot deadlock it (see Barrier.Partition).
//
// The reply is buffered here, before the record is appended; that is safe
// because no reply can reach the socket before sealBatch + Commit run —
// the flush boundary and the pre-commit guard in serveBatch both seal and
// commit first, and an append failure in sealBatch marks the connection
// dead before anything is flushed.
func (s *Server) applyDurable(st *connState, op wal.Op, key int64) error {
	d := s.dur
	p := d.Barrier.Partition(key)
	if !st.held[p] {
		d.Barrier.RLockPart(p)
		st.held[p] = true
		st.parts = append(st.parts, p)
	}
	var applied bool
	if op == wal.OpInsert {
		applied = st.sess.Insert(int(key))
	} else {
		applied = st.sess.Delete(int(key))
	}
	if applied {
		st.recs = append(st.recs, wal.Record{Op: op, Key: key})
	}
	return st.w.WriteBool(applied)
}

// sealBatch ends a batch's durable phase: append every record the batch
// applied as one WAL batch (one mutex round, consecutive LSNs), remember
// the last LSN as the connection's commit obligation, then release the
// barrier partitions. On append failure the batch is applied but unlogged:
// the connection is marked dead before any of its buffered acks can reach
// the wire, and the server-wide fault drain starts — the in-memory effects
// are unacknowledged and will not survive the restart that follows.
// Partition locks are released on every path; sealBatch is called on every
// exit from serveBatch.
func (s *Server) sealBatch(st *connState) error {
	var err error
	if len(st.recs) > 0 {
		var lsn uint64
		lsn, err = s.dur.Log.AppendBatch(st.recs)
		st.recs = st.recs[:0]
		if err != nil {
			st.dead = true
			s.durFault(err)
		} else {
			st.pend = lsn
		}
	}
	for _, p := range st.parts {
		st.held[p] = false
		s.dur.Barrier.RUnlockPart(p)
	}
	st.parts = st.parts[:0]
	return err
}
