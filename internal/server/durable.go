package server

import (
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/wal"
)

// Durability extends the server's conservation contract from acked ⇔
// applied to acked ⇔ durable. With it configured, every SET/DEL is applied
// and its log record appended atomically under the snapshot barrier's read
// lock, and the acknowledgement reaches the socket only after a commit
// group covering the record has been fsynced. Group commit does the
// amortizing: a pipelined batch costs one fsync at its flush boundary, and
// concurrent connections share commit groups, so the hot path stays
// allocation-free and fsync-bounded per batch.
//
// On a log fault (fsync error, short write) the server degrades exactly as
// the contract demands: the faulting connection never flushes acks that are
// not durable, every connection stops applying once its writer or the log
// is dead, and the server self-drains — stop accepting, kick reads, report
// via Fault/FaultC. It never acks-then-loses.
type Durability struct {
	// Log is the open write-ahead log, positioned after recovery.
	Log *wal.Log
	// Barrier is the snapshot write barrier; its width must match the
	// served container's sharding (snapshot.NewBarrier).
	Barrier *snapshot.Barrier
}

// Fault returns the durability error that moved the server into drain, or
// nil. Meaningful once FaultC is closed.
func (s *Server) Fault() error {
	if s.dur == nil {
		return nil
	}
	select {
	case <-s.faultC:
		return s.faultErr
	default:
		return nil
	}
}

// FaultC returns a channel closed when the durability layer fails; the
// server is then draining itself and the process should Shutdown and exit.
// Nil-safe on a server without durability (never closed).
func (s *Server) FaultC() <-chan struct{} { return s.faultC }

// durFault records the first durability fault and starts a self-drain:
// stop accepting, interrupt pending reads, let every connection finish what
// it can still honestly ack. Shutdown remains the caller's job (and is
// idempotent with the drain started here).
func (s *Server) durFault(err error) {
	s.faultOnce.Do(func() {
		s.faultErr = err
		close(s.faultC)
		go func() {
			s.draining.Store(true)
			s.ln.Close()
			s.mu.Lock()
			for c := range s.conns {
				c.SetReadDeadline(pastDeadline)
			}
			s.mu.Unlock()
		}()
	})
}

// commitPend makes the connection's appended records durable. On failure
// the connection is marked dead — its buffered replies must never be
// flushed, because they would acknowledge writes that were just lost — and
// the server-wide fault drain starts.
func (s *Server) commitPend(st *connState) error {
	if st.pend == 0 {
		return nil
	}
	if err := s.dur.Log.Commit(st.pend); err != nil {
		st.dead = true
		s.durFault(err)
		return err
	}
	st.pend = 0
	return nil
}

// applyDurable is the durable mutation path: apply and append atomically
// under the key's barrier read lock (so a snapshot either sees both the
// applied state and a covered LSN, or neither), ack later, after commit.
func (s *Server) applyDurable(st *connState, op wal.Op, key int64) error {
	d := s.dur
	d.Barrier.RLockKey(key)
	var applied bool
	if op == wal.OpInsert {
		applied = st.sess.Insert(int(key))
	} else {
		applied = st.sess.Delete(int(key))
	}
	if applied {
		lsn, err := d.Log.Append(op, key)
		if err != nil {
			d.Barrier.RUnlockKey(key)
			// Applied but unlogged: the op must not be acked. Kill the
			// connection before its reply is written; the in-memory effect
			// is unacknowledged and will not survive the restart that
			// follows the fault drain.
			st.dead = true
			s.durFault(err)
			return err
		}
		st.pend = lsn
		d.Barrier.RUnlockKey(key)
	} else {
		d.Barrier.RUnlockKey(key)
	}
	return st.w.WriteBool(applied)
}
