package server_test

import (
	"path/filepath"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/wal"
)

// startDurable recovers a multiset from dir on fs and starts a durable
// server over it. The caller shuts down the server, then closes the log.
func startDurable(tb testing.TB, fs wal.FS, dir string) (*server.Server, *wal.Log) {
	tb.Helper()
	c := container.Multiset(multiset.New[int]())
	l, _, err := snapshot.Recover(c, dir, wal.Options{FS: fs})
	if err != nil {
		tb.Fatalf("recover: %v", err)
	}
	s, err := server.Start(c, server.Config{
		Durable: &server.Durability{Log: l, Barrier: snapshot.NewBarrier(1)},
	})
	if err != nil {
		l.Close()
		tb.Fatalf("start: %v", err)
	}
	return s, l
}

// pipelinedSetRound sends one batch of SETs over a small key set and drains
// the replies — the pure durable write path, no reads mixed in.
func pipelinedSetRound(tb testing.TB, cl *client.Client, depth int) {
	tb.Helper()
	for i := 0; i < depth; i++ {
		if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(i & 7)}); err != nil {
			tb.Fatalf("send: %v", err)
		}
	}
	if err := cl.Flush(); err != nil {
		tb.Fatalf("flush: %v", err)
	}
	for i := 0; i < depth; i++ {
		if _, err := cl.Recv(); err != nil {
			tb.Fatalf("recv: %v", err)
		}
	}
}

// TestServerWALPipelinedAllocFree extends the PR 5 alloc pin to the durable
// write path: a pipelined SET batch through apply+append+group-commit stays
// at <= 1 alloc/op in steady state, on the real file system. The WAL's
// in-place frame encoding and the double-buffered group commit are what keep
// the log out of the allocation budget.
func TestServerWALPipelinedAllocFree(t *testing.T) {
	s, l := startDurable(t, wal.OS, filepath.Join(t.TempDir(), "wal"))
	defer l.Close()
	defer shutdownNow(t, s)

	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const depth = 128
	for i := 0; i < 20; i++ {
		pipelinedSetRound(t, cl, depth)
	}
	allocs := testing.AllocsPerRun(50, func() { pipelinedSetRound(t, cl, depth) })
	perOp := allocs / depth
	t.Logf("pipelined durable SET: %.3f allocs per %d-op batch = %.4f allocs/op", allocs, depth, perOp)
	if perOp > 1 {
		t.Errorf("durable hot path allocates %.4f allocs/op, want <= 1", perOp)
	}
}

// TestServerWALGroupCommitPerBatchFsync is the failpoint-counting test for
// the amortization claim: one fsync covers an entire pipelined batch, not
// one per operation. FaultFS counts the actual Sync calls under the server.
func TestServerWALGroupCommitPerBatchFsync(t *testing.T) {
	ffs := wal.NewFaultFS(wal.NewMemFS())
	s, l := startDurable(t, ffs, "wal")
	defer l.Close()
	defer shutdownNow(t, s)

	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const depth, rounds = 128, 10
	for i := 0; i < 5; i++ {
		pipelinedSetRound(t, cl, depth)
	}
	start := ffs.Syncs()
	for i := 0; i < rounds; i++ {
		pipelinedSetRound(t, cl, depth)
	}
	syncs := ffs.Syncs() - start
	t.Logf("%d fsyncs for %d batches (%d ops)", syncs, rounds, rounds*depth)
	if syncs < rounds {
		t.Errorf("%d fsyncs for %d batches: a batch was acked without its own commit", syncs, rounds)
	}
	// One fsync per batch is the steady state; loopback framing can split a
	// batch across reads occasionally, so allow slack — but nothing close to
	// per-op syncing (which would be depth*rounds).
	if syncs > 3*rounds {
		t.Errorf("%d fsyncs for %d batches of %d ops: group commit is not amortizing", syncs, rounds, depth)
	}
}

// runWALFaultScenario drives a durable server into an injected disk fault
// mid-load and checks the whole degradation contract: the server reports the
// fault (FaultC), drains cleanly (Shutdown returns nil), and — after a
// simulated crash and recovery — every acknowledged insert is present and
// nothing beyond the acked+in-flight window survived. "Never ack a lost
// write", checked literally against the recovered state.
func runWALFaultScenario(t *testing.T, arm func(*wal.FaultFS)) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	s, l := startDurable(t, ffs, "wal")

	cl, err := client.DialOptions(s.Addr().String(), client.Options{ReadTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const keys, depth = 8, 64
	acked := make([]int, keys) // replies received: definitely durable
	maybe := make([]int, keys) // sent, no reply: may or may not have landed

	batch := func() (failed bool) {
		sent := make([]int, 0, depth)
		for i := 0; i < depth; i++ {
			k := i % keys
			if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(k)}); err != nil {
				for _, m := range append(sent, k) {
					maybe[m]++
				}
				return true
			}
			sent = append(sent, k)
		}
		if err := cl.Flush(); err != nil {
			for _, m := range sent {
				maybe[m]++
			}
			return true
		}
		for got := 0; got < len(sent); got++ {
			rep, err := cl.Recv()
			if err != nil {
				for _, m := range sent[got:] {
					maybe[m]++
				}
				return true
			}
			if ok, err := rep.Bool(); err == nil && ok {
				acked[sent[got]]++
			}
		}
		return false
	}

	for i := 0; i < 3; i++ { // healthy warmup
		if batch() {
			t.Fatal("connection failed before the fault was armed")
		}
	}
	arm(ffs)
	deadline := time.Now().Add(10 * time.Second)
	failed := false
	for !failed && time.Now().Before(deadline) {
		failed = batch()
	}
	if !failed {
		t.Fatal("injected fault never surfaced to the client")
	}

	select {
	case <-s.FaultC():
	case <-time.After(5 * time.Second):
		t.Fatal("server did not report the durability fault")
	}
	if s.Fault() == nil {
		t.Error("FaultC closed but Fault() is nil")
	}
	shutdownNow(t, s) // a faulted server must still drain cleanly
	l.Close()

	// Crash: everything not fsynced is gone. Recover on the raw MemFS (the
	// injector stays armed and would fail the recovery's own syncs).
	mem.Crash()
	c2 := container.Multiset(multiset.New[int]())
	l2, _, err := snapshot.Recover(c2, "wal", wal.Options{FS: mem})
	if err != nil {
		t.Fatalf("recover after fault: %v", err)
	}
	defer l2.Close()

	got := make([]int, keys)
	c2.Range(func(k, n int) bool {
		if k < 0 || k >= keys {
			t.Errorf("recovered unexpected key %d", k)
			return true
		}
		got[k] = n
		return true
	})
	for k := 0; k < keys; k++ {
		if got[k] < acked[k] {
			t.Errorf("key %d: %d inserts acked but only %d recovered — an acked write was lost", k, acked[k], got[k])
		}
		if got[k] > acked[k]+maybe[k] {
			t.Errorf("key %d: recovered %d, exceeds acked %d + in-flight %d", k, got[k], acked[k], maybe[k])
		}
	}
}

func TestServerWALFsyncErrorNeverAcksLost(t *testing.T) {
	runWALFaultScenario(t, func(f *wal.FaultFS) { f.SetSyncErrAfter(0) })
}

func TestServerWALShortWriteNeverAcksLost(t *testing.T) {
	runWALFaultScenario(t, func(f *wal.FaultFS) { f.SetShortWriteAt(1) })
}

// TestServerBatchCommitAcrossRotation pins the batch-boundary ordering
// contract where it is easiest to get wrong: when one pipelined batch's
// records span a WAL segment rotation. With a tiny segment threshold every
// few batches straddle a seal+create, and the server must still hold every
// ack until Commit(lsn) covers the batch's *last* record — in the new
// segment. A simulated crash (MemFS drops unsynced bytes, no shutdown
// flushing) then recovery must find exactly the acked counts: fewer means an
// ack escaped before its commit; more means an unacked write leaked, since
// the client drained every reply before the crash.
func TestServerBatchCommitAcrossRotation(t *testing.T) {
	mem := wal.NewMemFS()
	c := container.Multiset(multiset.New[int]())
	l, _, err := snapshot.Recover(c, "wal", wal.Options{FS: mem, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	s, err := server.Start(c, server.Config{
		Durable: &server.Durability{Log: l, Barrier: snapshot.NewBarrier(1)},
	})
	if err != nil {
		l.Close()
		t.Fatalf("start: %v", err)
	}

	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const keys, depth, rounds = 8, 128, 20
	acked := make([]int, keys)
	for r := 0; r < rounds; r++ {
		for i := 0; i < depth; i++ {
			if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(i % keys)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		for i := 0; i < depth; i++ {
			rep, err := cl.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if ok, err := rep.Bool(); err == nil && ok {
				acked[i%keys]++
			}
		}
	}
	cl.Close()
	if rot := l.Metrics().Rotations; rot == 0 {
		t.Fatalf("no segment rotation in %d batches of %d records — shrink SegmentBytes", rounds, depth)
	} else {
		t.Logf("%d rotations across %d batches", rot, rounds)
	}

	// Crash first — freezing durable state at the moment the last ack was
	// read — then tear the old server down (it has nothing left to write).
	mem.Crash()
	shutdownNow(t, s)
	l.Close()

	c2 := container.Multiset(multiset.New[int]())
	l2, _, err := snapshot.Recover(c2, "wal", wal.Options{FS: mem})
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	defer l2.Close()
	got := make([]int, keys)
	c2.Range(func(k, n int) bool {
		if k >= 0 && k < keys {
			got[k] = n
		}
		return true
	})
	for k := 0; k < keys; k++ {
		if got[k] != acked[k] {
			t.Errorf("key %d: recovered count %d, acked %d — batch commit leaked across a rotation", k, got[k], acked[k])
		}
	}
}

// TestServerWALRestartConservation is the in-process restart loop: durable
// writes, clean shutdown, recovery into a fresh server, and the recovered
// server keeps serving with counts exactly equal to what was acked. (The
// kill -9 variant lives in crash_test.go; this one pins the clean path.)
func TestServerWALRestartConservation(t *testing.T) {
	mem := wal.NewMemFS()
	want := make(map[int]int)
	for round := 0; round < 3; round++ {
		s, l := startDurable(t, mem, "wal")
		cl, err := client.Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("round %d dial: %v", round, err)
		}
		for k := 0; k < 8; k++ {
			if n, err := cl.Count(k); err != nil {
				t.Fatalf("round %d count: %v", round, err)
			} else if int(n) != want[k] {
				t.Fatalf("round %d: key %d recovered count %d, want %d", round, k, n, want[k])
			}
		}
		for i := 0; i < 50; i++ {
			k := (round*7 + i) % 8
			if ok, err := cl.Set(k); err != nil {
				t.Fatalf("round %d set: %v", round, err)
			} else if ok {
				want[k]++
			}
		}
		if ok, err := cl.Del(round); err != nil {
			t.Fatalf("round %d del: %v", round, err)
		} else if ok {
			want[round]--
		}
		cl.Close()
		shutdownNow(t, s)
		l.Close()
		mem.Crash() // a clean shutdown must have made everything acked durable
	}
}
