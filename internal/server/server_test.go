package server_test

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
	"pragmaprim/internal/shard"
)

// startMultiset spins up a server over a fresh unsharded multiset.
func startMultiset(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.Start(container.Multiset(multiset.New[int]()), cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestServerBasicOps(t *testing.T) {
	s := startMultiset(t, server.Config{})
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got, err := cl.Get(7); err != nil || got {
		t.Fatalf("get before set: %v, %v", got, err)
	}
	if applied, err := cl.Set(7); err != nil || !applied {
		t.Fatalf("set: %v, %v", applied, err)
	}
	if got, err := cl.Get(7); err != nil || !got {
		t.Fatalf("get after set: %v, %v", got, err)
	}
	if n, err := cl.Size(); err != nil || n != 1 {
		t.Fatalf("size: %d, %v", n, err)
	}
	if applied, err := cl.Del(7); err != nil || !applied {
		t.Fatalf("del: %v, %v", applied, err)
	}
	if applied, err := cl.Del(7); err != nil || applied {
		t.Fatalf("del absent: %v, %v", applied, err)
	}
	if n, err := cl.Size(); err != nil || n != 0 {
		t.Fatalf("size after del: %d, %v", n, err)
	}
	txt, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"server: conns", "server: batches=", "server: batch_size_hist", "container: size=", "engine: ops="} {
		if !strings.Contains(txt, want) {
			t.Fatalf("stats dump missing %q:\n%s", want, txt)
		}
	}
}

// TestServerPipelinedBatch drives the async API at depth and checks replies
// arrive positionally.
func TestServerPipelinedBatch(t *testing.T) {
	s := startMultiset(t, server.Config{})
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const depth = 64
	for i := 0; i < depth; i++ {
		if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < depth; i++ {
		rep, err := cl.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if applied, err := rep.Bool(); err != nil || !applied {
			t.Fatalf("recv %d: applied=%v err=%v", i, applied, err)
		}
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending = %d after draining", cl.Pending())
	}
	if n, err := cl.Size(); err != nil || n != depth {
		t.Fatalf("size = %d, %v; want %d", n, err, depth)
	}
}

// TestServerMalformedFrame pins that a broken client gets an error frame
// and only its own connection dies.
func TestServerMalformedFrame(t *testing.T) {
	s := startMultiset(t, server.Config{})

	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0, 0, 0, 0}); err != nil { // zero-length frame
		t.Fatalf("write: %v", err)
	}
	r := proto.NewReader(raw, 0)
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatalf("read error frame: %v", err)
	}
	if rep.Status != proto.StatusErr {
		t.Fatalf("status = %v, want ERR", rep.Status)
	}

	// A healthy connection is unaffected.
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after malformed peer: %v", err)
	}
}

// TestServerMaxConns pins the connection-limit backpressure: the connection
// beyond the cap is refused with an error frame.
func TestServerMaxConns(t *testing.T) {
	s := startMultiset(t, server.Config{MaxConns: 1})
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil { // ensure conn 1 is being served
		t.Fatalf("ping: %v", err)
	}

	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer raw.Close()
	r := proto.NewReader(raw, 0)
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatalf("read rejection: %v", err)
	}
	if rep.Status != proto.StatusErr || !strings.Contains(string(rep.Bulk), "connection limit") {
		t.Fatalf("rejection reply: %+v", rep)
	}
}

// TestServerIdleTimeout pins that a silent connection is collected.
func TestServerIdleTimeout(t *testing.T) {
	s := startMultiset(t, server.Config{IdleTimeout: 50 * time.Millisecond})
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	cl.Conn().SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := cl.Recv(); err == nil {
		t.Fatal("idle connection still alive: got a reply")
	}
}

// TestServerSoakConservationAcrossShutdown is the PR 3 conservation
// invariant measured across the wire: N pipelined connections churn a
// sharded multiset, the server is shut down mid-run, and the sum of every
// client's acknowledged inserts minus acknowledged deletes must equal the
// server's final Size — an acknowledged operation is never lost, an
// unacknowledged one is never applied. The per-key union of the shards is
// cross-checked too, plus each shard's structural invariants.
func TestServerSoakConservationAcrossShutdown(t *testing.T) {
	// Force real multi-core scheduling (oversubscribed on smaller hosts):
	// the batched fast path folds per-connection counters and shares WAL
	// commit groups across connections, and this soak — especially under
	// -race — is where cross-connection interleavings would surface.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		shards = 4
		conns  = 6
		depth  = 32
		keys   = 96
	)
	sets := make([]*multiset.Multiset[int], shards)
	sh := shard.New(shards, func(i int) container.Container {
		sets[i] = multiset.New[int]()
		return container.Multiset(sets[i])
	})
	s, err := server.Start(sh, server.Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	var (
		ins, del atomic.Int64
		netByKey [keys]atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("conn %d: dial: %v", w, err)
				return
			}
			defer cl.Close()
			// Bound every read so a test failure cannot hang the suite.
			cl.Conn().SetReadDeadline(time.Now().Add(30 * time.Second))
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var kinds [depth]proto.Op
			var batchKeys [depth]int
			for {
				sent := 0
				for i := 0; i < depth; i++ {
					k := rng.Intn(keys)
					op := proto.OpSet
					switch rng.Intn(5) {
					case 0, 1: // 40% delete
						op = proto.OpDel
					case 2: // 20% get
						op = proto.OpGet
					}
					if err := cl.Send(proto.Request{Op: op, Key: int64(k)}); err != nil {
						break
					}
					kinds[sent], batchKeys[sent] = op, k
					sent++
				}
				flushErr := cl.Flush()
				// Drain replies for this batch; each one is a binding
				// acknowledgement even if the flush or a later recv fails.
				recvErr := error(nil)
				for i := 0; i < sent; i++ {
					rep, err := cl.Recv()
					if err != nil {
						recvErr = err
						break
					}
					applied := rep.Status == proto.StatusTrue
					if !applied {
						continue
					}
					switch kinds[i] {
					case proto.OpSet:
						ins.Add(1)
						netByKey[batchKeys[i]].Add(1)
					case proto.OpDel:
						del.Add(1)
						netByKey[batchKeys[i]].Add(-1)
					}
				}
				if flushErr != nil || recvErr != nil || sent < depth {
					return // server is draining; everything acked is counted
				}
			}
		}(w)
	}

	// Let the churn build up, then pull the rug mid-run.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	wantSize := int(ins.Load() - del.Load())
	if got := s.Size(); got != wantSize {
		t.Errorf("conservation violated across shutdown: final Size %d, want %d (%d acked inserts - %d acked deletes)",
			got, wantSize, ins.Load(), del.Load())
	}
	// Per-key cross-check against the union of the shards, plus structural
	// invariants per shard.
	items := make(map[int]int)
	for i, m := range sets {
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("shard %d: %v", i, err)
		}
		for k, n := range m.Items() {
			items[k] += n
		}
	}
	for k := 0; k < keys; k++ {
		if got, want := int64(items[k]), netByKey[k].Load(); got != want {
			t.Errorf("key %d: server count %d, acked net %d", k, got, want)
		}
	}
	if ins.Load() == 0 {
		t.Error("soak applied no inserts; the run did not exercise the server")
	}
}

// TestServerShutdownIdleConns pins that Shutdown does not wait on idle
// connections blocked in a read.
func TestServerShutdownIdleConns(t *testing.T) {
	s, err := server.Start(container.Multiset(multiset.New[int]()), server.Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shutdown with one idle conn took %v", d)
	}
}
