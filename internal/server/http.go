package server

import (
	"net/http"
	"strings"
)

// Handler returns the server's observability endpoints as an http.Handler:
//
//	/metrics             the human text dump (same bytes as the STATS command)
//	/metrics?format=prom Prometheus text exposition (parseable by obs.ParseProm)
//	/trace               the slow-op trace ring (same bytes as TRACE)
//
// The handler only reads — scrapes fold striped recorders and load atomics,
// never blocking the serving path — so it is safe to serve on any mux or
// listener, including one shared with net/http/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if strings.EqualFold(r.URL.Query().Get("format"), "prom") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.reg.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.WriteTrace(w)
	})
	return mux
}
