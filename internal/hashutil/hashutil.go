// Package hashutil holds the integer hash functions the partitioning layers
// share: Fibonacci multiply-shift routing (internal/shard) and the stronger
// splitmix64 finalizer the resizable hash map (internal/hashmap) buckets
// with.
//
// The two layers deliberately use DIFFERENT functions. Shard routing takes
// the top log2(shards) bits of key*FibMult, so every key inside one shard
// shares those top bits; if the hash map inside a shard bucketed by the same
// function, a 2^s-shard deployment would populate only 1/2^s of every map's
// buckets. Mix64's full-avalanche finalizer is independent of the Fibonacci
// multiply, so shard routing and bucket selection compose without
// correlation.
package hashutil

import "math/bits"

// FibMult is 2^64 divided by the golden ratio, the classic Fibonacci-hashing
// multiplier (odd, so multiplication is a bijection on uint64).
const FibMult = 0x9E3779B97F4A7C15

// Fib is the Fibonacci multiply: callers shift its result right to keep the
// top bits, which is where the multiplier's avalanche concentrates.
func Fib(key uint64) uint64 { return key * FibMult }

// FibIndex routes key into one of n slots, n a positive power of two, by
// taking the top log2(n) bits of the Fibonacci multiply — the shard layer's
// routing function in pure form. FibIndex(key, 1) is 0 for every key.
func FibIndex(key uint64, n int) int {
	return int(Fib(key) >> uint(64-bits.TrailingZeros(uint(n))))
}

// Mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64
// (every input bit affects every output bit with probability ~1/2). The hash
// map uses its top bits for bucket selection so that doubling a table splits
// every bucket i exactly into buckets 2i and 2i+1.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
