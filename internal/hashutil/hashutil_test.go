package hashutil_test

import (
	"math/bits"
	"testing"

	"pragmaprim/internal/hashutil"
)

// TestFibIndexMatchesLegacyShardFormula pins the extracted routing function
// to the exact arithmetic internal/shard used before the extraction:
// int((uint64(key) * 0x9E3779B97F4A7C15) >> (64 - log2(n))). Shard routing
// decides which shard owns which key in recovery replay (snapshot boundary
// LSNs are per shard), so it must stay byte-for-byte stable across
// refactors.
func TestFibIndexMatchesLegacyShardFormula(t *testing.T) {
	const legacyMult = 0x9E3779B97F4A7C15
	keys := []int{0, 1, 2, 3, 41, 1023, 1 << 20, -1, -7, 1<<62 + 12345}
	for i := 0; i < 10000; i++ {
		keys = append(keys, i*2654435761+i)
	}
	for _, n := range []int{1, 2, 4, 8, 64, 1024} {
		shift := uint(64 - bits.TrailingZeros(uint(n)))
		for _, k := range keys {
			want := int((uint64(k) * legacyMult) >> shift)
			if got := hashutil.FibIndex(uint64(k), n); got != want {
				t.Fatalf("FibIndex(%d, %d) = %d, want %d (legacy formula)", k, n, got, want)
			}
		}
	}
}

// TestFibIndexGoldenVector pins a handful of concrete (key, n) -> shard
// routings as literal values, so even a simultaneous change to this package
// and the legacy formula above cannot silently move keys between shards.
func TestFibIndexGoldenVector(t *testing.T) {
	cases := []struct {
		key  int
		n    int
		want int
	}{
		{0, 4, 0},
		{1, 4, 2},
		{2, 4, 0},
		{3, 4, 3},
		{4, 4, 1},
		{100, 8, 6},
		{1023, 8, 1},
		{-1, 4, 1},
	}
	for _, c := range cases {
		if got := hashutil.FibIndex(uint64(c.key), c.n); got != c.want {
			t.Errorf("FibIndex(%d, %d) = %d, want %d", c.key, c.n, got, c.want)
		}
	}
}

// TestMix64Avalanche sanity-checks the bucket-selection hash: flipping one
// input bit should flip roughly half the output bits (full avalanche), which
// is what makes top-bits bucket extraction safe for dense sequential keys.
func TestMix64Avalanche(t *testing.T) {
	total, samples := 0, 0
	for x := uint64(0); x < 512; x++ {
		h := hashutil.Mix64(x)
		for bit := 0; bit < 64; bit += 7 {
			d := bits.OnesCount64(h ^ hashutil.Mix64(x^(1<<bit)))
			total += d
			samples++
		}
	}
	avg := float64(total) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Fatalf("average flipped output bits per input-bit flip = %.1f, want ~32", avg)
	}
}

// TestMix64Bijective spot-checks injectivity over a dense range (a bijection
// cannot collide), guarding against a typo in the finalizer constants.
func TestMix64Bijective(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		h := hashutil.Mix64(x)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", x, prev, h)
		}
		seen[h] = x
	}
}
