package bst_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"pragmaprim/internal/bst"
)

func checkInv(t *testing.T, tr *bst.Tree[int, int]) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := bst.New[int, int]()
	if _, ok := tr.Get(5); ok {
		t.Error("Get on empty returned ok")
	}
	if tr.Contains(5) {
		t.Error("Contains on empty = true")
	}
	if _, ok := tr.Delete(5); ok {
		t.Error("Delete on empty = true")
	}
	if got := tr.Len(); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
	checkInv(t, tr)
}

func TestPutGetSingle(t *testing.T) {
	tr := bst.New[int, int]()
	if !tr.Put(5, 50) {
		t.Fatal("Put of new key returned false")
	}
	v, ok := tr.Get(5)
	if !ok || v != 50 {
		t.Fatalf("Get(5) = (%d,%v), want (50,true)", v, ok)
	}
	checkInv(t, tr)
}

func TestPutReplacesValue(t *testing.T) {
	tr := bst.New[int, int]()
	tr.Put(5, 50)
	if tr.Put(5, 51) {
		t.Fatal("Put of existing key returned true")
	}
	v, _ := tr.Get(5)
	if v != 51 {
		t.Fatalf("Get(5) = %d, want 51", v)
	}
	if got := tr.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	checkInv(t, tr)
}

func TestPutManySorted(t *testing.T) {
	tr := bst.New[int, int]()
	for _, k := range []int{50, 20, 80, 10, 30, 70, 90, 25, 35} {
		tr.Put(k, k*10)
	}
	keys := tr.Keys()
	want := []int{10, 20, 25, 30, 35, 50, 70, 80, 90}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	checkInv(t, tr)
}

func TestDeleteLeafAndReinsert(t *testing.T) {
	tr := bst.New[int, int]()
	tr.Put(5, 50)
	v, ok := tr.Delete(5)
	if !ok || v != 50 {
		t.Fatalf("Delete(5) = (%d,%v), want (50,true)", v, ok)
	}
	if tr.Contains(5) {
		t.Error("key still present after delete")
	}
	checkInv(t, tr)
	// Tree must remain fully usable after emptying.
	tr.Put(7, 70)
	if v, ok := tr.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = (%d,%v), want (70,true)", v, ok)
	}
	checkInv(t, tr)
}

func TestDeleteAbsentKey(t *testing.T) {
	tr := bst.New[int, int]()
	tr.Put(5, 50)
	if _, ok := tr.Delete(6); ok {
		t.Error("Delete of absent key = true")
	}
	if got := tr.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	checkInv(t, tr)
}

func TestDeleteInteriorKeys(t *testing.T) {
	tr := bst.New[int, int]()
	keys := []int{50, 20, 80, 10, 30, 70, 90}
	for _, k := range keys {
		tr.Put(k, k)
	}
	for _, k := range []int{20, 80, 50} { // keys with internal routers above
		if _, ok := tr.Delete(k); !ok {
			t.Fatalf("Delete(%d) = false", k)
		}
		checkInv(t, tr)
	}
	got := tr.Keys()
	want := []int{10, 30, 70, 90}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestStringKeysAndValues(t *testing.T) {
	tr := bst.New[string, string]()
	tr.Put("m", "em")
	tr.Put("a", "ay")
	tr.Put("z", "zee")
	if v, ok := tr.Get("a"); !ok || v != "ay" {
		t.Fatalf("Get(a) = (%q,%v)", v, ok)
	}
	if _, ok := tr.Delete("m"); !ok {
		t.Fatal("Delete(m) = false")
	}
	keys := tr.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "z" {
		t.Fatalf("Keys = %v, want [a z]", keys)
	}
}

// TestQuickAgainstMapModel drives random op sequences against a map model.
func TestQuickAgainstMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int16
	}
	f := func(ops []op) bool {
		tr := bst.New[int, int]()
		model := make(map[int]int)
		for _, o := range ops {
			key := int(o.Key % 32)
			val := int(o.Val)
			switch o.Kind % 3 {
			case 0:
				_, existed := model[key]
				if tr.Put(key, val) != !existed {
					return false
				}
				model[key] = val
			case 1:
				want, existed := model[key]
				got, ok := tr.Delete(key)
				if ok != existed {
					return false
				}
				if existed && got != want {
					return false
				}
				delete(model, key)
			case 2:
				want, existed := model[key]
				got, ok := tr.Get(key)
				if ok != existed || (existed && got != want) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		items := tr.Items()
		if len(items) != len(model) {
			return false
		}
		for k, v := range model {
			if items[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutDisjointKeys: all puts on distinct keys must land.
func TestConcurrentPutDisjointKeys(t *testing.T) {
	const procs = 8
	const perProc = 300
	tr := bst.New[int, int]()

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				k := g*perProc + i
				if !tr.Put(k, k) {
					t.Errorf("Put(%d) of fresh key returned false", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < procs*perProc; k++ {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if got := tr.Len(); got != procs*perProc {
		t.Errorf("Len = %d, want %d", got, procs*perProc)
	}
	checkInv(t, tr)
}

// TestConcurrentInsertDeleteChurn: goroutines insert then delete their own
// keys; the tree must drain to empty with invariants intact.
func TestConcurrentInsertDeleteChurn(t *testing.T) {
	const procs = 8
	const perProc = 250
	tr := bst.New[int, int]()

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perProc; i++ {
				k := g*1000 + rng.Intn(500)
				tr.Put(k, k)
				if _, ok := tr.Delete(k); !ok {
					t.Errorf("Delete(%d) = false though this goroutine owns the key", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := tr.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0; keys=%v", got, tr.Keys())
	}
	checkInv(t, tr)
}

// TestConcurrentMixedSharedKeys: heavy churn on a small shared key space;
// afterwards, the surviving key set must match a per-key net reconstruction.
func TestConcurrentMixedSharedKeys(t *testing.T) {
	const procs = 6
	const perProc = 400
	const keyRange = 16
	tr := bst.New[int, int]()

	// Track per-key presence transitions: counts of successful inserts
	// (Put returning true) and successful deletes per key must differ by
	// exactly 0 or 1, and the key is present iff inserts == deletes+1.
	inserts := make([][]int64, procs)
	deletes := make([][]int64, procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		inserts[g] = make([]int64, keyRange)
		deletes[g] = make([]int64, keyRange)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 99)))
			for i := 0; i < perProc; i++ {
				k := rng.Intn(keyRange)
				if rng.Intn(2) == 0 {
					if tr.Put(k, g) {
						inserts[g][k]++
					}
				} else if _, ok := tr.Delete(k); ok {
					deletes[g][k]++
				}
			}
		}(g)
	}
	wg.Wait()

	checkInv(t, tr)
	present := make(map[int]bool)
	for _, k := range tr.Keys() {
		present[k] = true
	}
	for k := 0; k < keyRange; k++ {
		var ins, del int64
		for g := 0; g < procs; g++ {
			ins += inserts[g][k]
			del += deletes[g][k]
		}
		switch ins - del {
		case 0:
			if present[k] {
				t.Errorf("key %d present but inserts==deletes==%d", k, ins)
			}
		case 1:
			if !present[k] {
				t.Errorf("key %d absent but inserts=%d deletes=%d", k, ins, del)
			}
		default:
			t.Errorf("key %d: inserts=%d deletes=%d (impossible gap)", k, ins, del)
		}
	}
}

// TestConcurrentReadersDuringChurn: readers must never observe a broken tree
// (panic/nil deref) and Gets must return only values some writer stored.
func TestConcurrentReadersDuringChurn(t *testing.T) {
	const writers = 4
	const readers = 4
	const perWriter = 500
	const keyRange = 64
	tr := bst.New[int, int]()
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				k := rng.Intn(keyRange)
				if rng.Intn(2) == 0 {
					tr.Put(k, k*7)
				} else {
					tr.Delete(k)
				}
			}
		}(g)
	}
	var rg sync.WaitGroup
	for g := 0; g < readers; g++ {
		rg.Add(1)
		go func(g int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1000)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keyRange)
				if v, ok := tr.Get(k); ok && v != k*7 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*7)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	checkInv(t, tr)
}

func TestKeysSortedUnderRandomOps(t *testing.T) {
	tr := bst.New[int, int]()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		k := rng.Intn(200)
		if rng.Intn(3) == 0 {
			tr.Delete(k)
		} else {
			tr.Put(k, i)
		}
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	checkInv(t, tr)
}
