// Package bst implements a non-blocking external binary search tree on top
// of the LLX/SCX primitives, the application family the paper's Section 6
// names as the payoff of the new primitives (and that Brown, Ellen and
// Ruppert develop fully in their follow-on tree-update template work).
//
// The tree is external: internal nodes are pure routers with two children,
// leaves carry the key/value pairs. Every update replaces a small constant-
// size portion of the tree with one SCX that swings a single child pointer
// and finalizes exactly the removed nodes, so the structure inherits
// linearizability and the non-blocking property from the primitives the
// same way the paper's multiset does:
//
//   - Put of a new key replaces a leaf with an internal node carrying the
//     new leaf and the old leaf (SCX on ⟨parent⟩, nothing finalized).
//   - Put of an existing key replaces the old leaf (SCX on ⟨parent, leaf⟩,
//     finalizing the old leaf).
//   - Delete replaces the parent with the leaf's sibling (SCX on
//     ⟨grandparent, parent, children in left-right order⟩, finalizing the
//     parent and the removed leaf).
//
// Searches traverse child pointers with plain reads, justified by the
// paper's Proposition 2, under an epoch guard (removed nodes are recycled
// through internal/reclaim, not left to the garbage collector); updates run
// on the internal/template engine, which owns the retry loop, backoff and
// contention counters. Child links are raw de-boxed pointer words, and every
// node — leaf or router — embeds its Data-record with the same two-pointer
// layout, so one reclaim pool recycles all of them interchangeably. The
// tree uses the standard two-sentinel construction (keys ∞₁ < ∞₂ above
// every real key) so that every real leaf has an internal parent and
// grandparent.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package bst

import (
	"cmp"
	"fmt"
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// Mutable-field indices of a node's Data-record (pointer fields).
const (
	fieldLeft  = 0
	fieldRight = 1
)

// sentinel ranks; larger ranks compare above every real key.
type sentinel int8

const (
	sentReal sentinel = iota
	sentInf1
	sentInf2
)

// node is one tree node. All node fields except the record's child pointers
// are immutable while published, as the template requires. Leaves and
// routers share one layout (two pointer fields, unused by leaves) so the
// reclaim pool can recycle any node as any other.
type node[K cmp.Ordered, V any] struct {
	rec  core.Record
	key  K
	sent sentinel
	leaf bool
	val  V // meaningful only for real leaves
}

// child reads the dir child of internal node n with a plain read.
func (n *node[K, V]) child(dir int) *node[K, V] {
	return (*node[K, V])(n.rec.Ptr(dir))
}

// keyLess reports whether a search for key descends left at n, i.e.
// key < n.key with sentinel keys above all real keys.
func (n *node[K, V]) keyLess(key K) bool {
	if n.sent != sentReal {
		return true
	}
	return key < n.key
}

// matches reports whether leaf n holds exactly key.
func (n *node[K, V]) matches(key K) bool {
	return n.sent == sentReal && n.key == key
}

// Tree is a non-blocking ordered map from K to V. The zero value is not
// usable; create one with New. All methods are safe for concurrent use.
type Tree[K cmp.Ordered, V any] struct {
	root     *node[K, V]
	pool     *reclaim.Pool[node[K, V]]
	policy   template.Policy
	putStats template.OpStats
	delStats template.OpStats
}

// New creates an empty tree: a root router with key ∞₂ whose children are
// the ∞₁ and ∞₂ sentinel leaves. The root is the sole entry point and is
// never finalized.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	t := &Tree[K, V]{pool: reclaim.NewPool[node[K, V]]()}
	// Rewind records as nodes enter the freelists, releasing the
	// descriptors their info fields would otherwise park (see reclaim).
	t.pool.SetOnFree(func(n *node[K, V]) { n.rec.Recycle() })
	var zeroK K
	var zeroV V
	l1 := t.newLeaf(nil, zeroK, sentInf1, zeroV)
	l2 := t.newLeaf(nil, zeroK, sentInf2, zeroV)
	t.root = t.newInternal(nil, zeroK, sentInf2, l1, l2)
	return t
}

// alloc recycles or allocates a blank node; every node has the same
// two-pointer record layout.
func (t *Tree[K, V]) alloc(l *reclaim.Local) *node[K, V] {
	n := t.pool.Get(l)
	if n == nil {
		n = &node[K, V]{}
		core.InitRecord(&n.rec, 0, 2)
	} else {
		n.rec.Recycle()
	}
	return n
}

// setInternal and setLeaf are the single places node state is set, shared
// by the constructors and the retry paths that re-arm a node built by an
// earlier attempt.
func setInternal[K cmp.Ordered, V any](n *node[K, V], key K, sent sentinel, left, right *node[K, V]) {
	var zeroV V
	n.key, n.sent, n.leaf, n.val = key, sent, false, zeroV
	n.rec.SetPtr(fieldLeft, unsafe.Pointer(left))
	n.rec.SetPtr(fieldRight, unsafe.Pointer(right))
}

func setLeaf[K cmp.Ordered, V any](n *node[K, V], key K, sent sentinel, val V) {
	n.key, n.sent, n.leaf, n.val = key, sent, true, val
	n.rec.SetPtr(fieldLeft, nil)
	n.rec.SetPtr(fieldRight, nil)
}

func (t *Tree[K, V]) newInternal(l *reclaim.Local, key K, sent sentinel, left, right *node[K, V]) *node[K, V] {
	n := t.alloc(l)
	setInternal(n, key, sent, left, right)
	return n
}

func (t *Tree[K, V]) newLeaf(l *reclaim.Local, key K, sent sentinel, val V) *node[K, V] {
	n := t.alloc(l)
	setLeaf(n, key, sent, val)
	return n
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the tree.
func (t *Tree[K, V]) SetPolicy(p template.Policy) { t.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (t *Tree[K, V]) EngineStats() template.Counters {
	return t.putStats.Snapshot().Add(t.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (t *Tree[K, V]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"put":    t.putStats.Snapshot(),
		"delete": t.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Tree: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Tree.
type Session[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (t *Tree[K, V]) Attach(h *core.Handle) Session[K, V] {
	return Session[K, V]{t: t, h: h}
}

// Handle returns the Session's Handle.
func (s Session[K, V]) Handle() *core.Handle { return s.h }

// search walks from the root to the leaf whose key range covers key,
// returning the leaf l, its parent p and grandparent g (g is nil iff p is
// the root). Plain reads only; the caller must hold an epoch guard.
func (t *Tree[K, V]) search(key K) (g, p, l *node[K, V]) {
	l = t.root
	for !l.leaf {
		g = p
		p = l
		if l.keyLess(key) {
			l = l.child(fieldLeft)
		} else {
			l = l.child(fieldRight)
		}
	}
	return g, p, l
}

// Get returns the value stored for key, if any, using a pooled Handle; see
// Session.Get for the hot-path form.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Get(key)
	h.Release()
	return v, ok
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Put maps key to val using a pooled Handle; see Session.Put for the
// hot-path form.
func (t *Tree[K, V]) Put(key K, val V) bool {
	h := core.AcquireHandle()
	ok := t.Attach(h).Put(key, val)
	h.Release()
	return ok
}

// Delete removes key's mapping using a pooled Handle; see Session.Delete
// for the hot-path form.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Delete(key)
	h.Release()
	return v, ok
}

// Get returns the value stored for key, if any.
func (s Session[K, V]) Get(key K) (V, bool) {
	template.Enter(s.h)
	defer template.Exit(s.h)
	_, _, l := s.t.search(key)
	if l.matches(key) {
		return l.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (s Session[K, V]) Contains(key K) bool {
	_, ok := s.Get(key)
	return ok
}

// childDir returns the field index of p's child that snapshot snap shows as
// c, or -1 if c is no longer a child of p in snap.
func childDir[K cmp.Ordered, V any](snap *core.Fields, c *node[K, V]) int {
	if (*node[K, V])(snap.Ptr(fieldLeft)) == c {
		return fieldLeft
	}
	if (*node[K, V])(snap.Ptr(fieldRight)) == c {
		return fieldRight
	}
	return -1
}

// Put maps key to val, returning true if key was newly inserted and false if
// an existing mapping was replaced.
func (s Session[K, V]) Put(key K, val V) bool {
	t := s.t
	var n1, n2 *node[K, V] // built at most once per operation; retries retarget
	return template.Run(s.h, t.policy, &t.putStats, func(c *template.Ctx) (bool, template.Action) {
		_, p, l := t.search(key)
		localp, st := c.LLXF(&p.rec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		dir := childDir(localp, l)
		if dir == -1 {
			return false, template.Retry // tree moved under us; re-search
		}
		// Every Put path publishes a fresh leaf; build (or re-arm the
		// recycled) n1 once for this attempt.
		if n1 == nil {
			n1 = t.newLeaf(c.Reclaim(), key, sentReal, val)
		} else {
			setLeaf(n1, key, sentReal, val)
		}
		if l.matches(key) {
			// Replace the existing leaf, finalizing it.
			if _, st := c.LLXF(&l.rec); st != core.LLXOK {
				return false, template.Retry
			}
			if c.SCXPtr([]*core.Record{&p.rec, &l.rec}, []*core.Record{&l.rec},
				p.rec.PtrField(dir), unsafe.Pointer(n1)) {
				if n2 != nil {
					t.pool.Release(c.Reclaim(), n2)
				}
				t.pool.Retire(c.Reclaim(), l)
				return false, template.Done
			}
			return false, template.Retry
		}
		// Splice an internal node carrying the new leaf and the old leaf.
		if n2 == nil {
			n2 = t.alloc(c.Reclaim())
		}
		switch {
		case l.sent != sentReal:
			// key < l: the router inherits l's sentinel key.
			setInternal(n2, l.key, l.sent, n1, l)
		case key < l.key:
			setInternal(n2, l.key, sentReal, n1, l)
		default:
			setInternal(n2, key, sentReal, l, n1)
		}
		if c.SCXPtr([]*core.Record{&p.rec}, nil, p.rec.PtrField(dir),
			unsafe.Pointer(n2)) {
			return true, template.Done
		}
		return false, template.Retry
	})
}

// delResult carries Delete's two return values through the engine.
type delResult[V any] struct {
	val V
	ok  bool
}

// Delete removes key's mapping, returning the removed value and true, or the
// zero value and false if key was absent.
func (s Session[K, V]) Delete(key K) (V, bool) {
	t := s.t
	res := template.Run(s.h, t.policy, &t.delStats, func(c *template.Ctx) (delResult[V], template.Action) {
		g, p, l := t.search(key)
		if !l.matches(key) {
			return delResult[V]{}, template.Done
		}
		// A real leaf always has an internal parent and grandparent thanks
		// to the sentinel construction.
		localg, st := c.LLXF(&g.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		pdir := childDir(localg, p)
		if pdir == -1 {
			return delResult[V]{}, template.Retry
		}
		localp, st := c.LLXF(&p.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		ldir := childDir(localp, l)
		if ldir == -1 {
			return delResult[V]{}, template.Retry
		}
		sib := (*node[K, V])(localp.Ptr(1 - ldir)) // sibling, per the snapshot
		if sib == nil {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLXF(&l.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLXF(&sib.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		// V lists g, p, then p's children in left-right order — an order
		// consistent with a preorder walk, satisfying the Section 4.1
		// total-order constraint.
		var v []*core.Record
		if ldir == fieldLeft {
			v = []*core.Record{&g.rec, &p.rec, &l.rec, &sib.rec}
		} else {
			v = []*core.Record{&g.rec, &p.rec, &sib.rec, &l.rec}
		}
		if c.SCXPtr(v, []*core.Record{&p.rec, &l.rec}, g.rec.PtrField(pdir),
			unsafe.Pointer(sib)) {
			val := l.val
			t.pool.Retire(c.Reclaim(), p)
			t.pool.Retire(c.Reclaim(), l)
			return delResult[V]{val: val, ok: true}, template.Done
		}
		return delResult[V]{}, template.Retry
	})
	return res.val, res.ok
}

// Len returns the number of real keys observed by one traversal. On a
// quiescent tree it is exact; under concurrency it is a weakly consistent
// count (each counted leaf was present at some point, Proposition 2).
func (t *Tree[K, V]) Len() int {
	n := 0
	template.Guarded(func() { t.walk(t.root, func(l *node[K, V]) { n++ }) })
	return n
}

// Keys returns the real keys in ascending order, with the same consistency
// caveat as Len.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	template.Guarded(func() { t.walk(t.root, func(l *node[K, V]) { keys = append(keys, l.key) }) })
	return keys
}

// Items returns the key -> value contents, with the same consistency caveat
// as Len.
func (t *Tree[K, V]) Items() map[K]V {
	items := make(map[K]V)
	template.Guarded(func() { t.walk(t.root, func(l *node[K, V]) { items[l.key] = l.val }) })
	return items
}

// walk visits real leaves in key order.
func (t *Tree[K, V]) walk(n *node[K, V], visit func(l *node[K, V])) {
	if n == nil {
		return
	}
	if n.leaf {
		if n.sent == sentReal {
			visit(n)
		}
		return
	}
	t.walk(n.child(fieldLeft), visit)
	t.walk(n.child(fieldRight), visit)
}

// CheckInvariants verifies the external-BST shape on a quiescent tree: every
// internal node has two children, keys respect the search-tree order with
// sentinels outermost, and no reachable node is finalized. It returns an
// error describing the first violation. Intended for tests.
func (t *Tree[K, V]) CheckInvariants() error {
	var err error
	template.Guarded(func() { err = t.check(t.root, nil, nil) })
	return err
}

// check validates the subtree at n against the half-open key interval
// [lo, hi) expressed as optional reference nodes: a router sends keys
// strictly below its own key left and keys at or above it right.
func (t *Tree[K, V]) check(n, lo, hi *node[K, V]) error {
	if n == nil {
		return fmt.Errorf("nil child reachable")
	}
	if n.rec.Finalized() {
		return fmt.Errorf("reachable node (key %v, leaf=%v) is finalized", n.key, n.leaf)
	}
	if lo != nil && nodeLess(n, lo) {
		return fmt.Errorf("node %v violates lower bound %v", n.key, lo.key)
	}
	if hi != nil && !nodeLess(n, hi) {
		return fmt.Errorf("node %v violates upper bound %v", n.key, hi.key)
	}
	if n.leaf {
		return nil
	}
	if err := t.check(n.child(fieldLeft), lo, n); err != nil {
		return err
	}
	return t.check(n.child(fieldRight), n, hi)
}

// nodeLess orders nodes by (real keys, then ∞₁, then ∞₂), strictly.
func nodeLess[K cmp.Ordered, V any](a, b *node[K, V]) bool {
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.sent != sentReal {
		return false // equal sentinels are not strictly ordered
	}
	return a.key < b.key
}
