// Package bst implements a non-blocking external binary search tree on top
// of the LLX/SCX primitives, the application family the paper's Section 6
// names as the payoff of the new primitives (and that Brown, Ellen and
// Ruppert develop fully in their follow-on tree-update template work).
//
// The tree is external: internal nodes are pure routers with two children,
// leaves carry the key/value pairs. Every update replaces a small constant-
// size portion of the tree with one SCX that swings a single child pointer
// and finalizes exactly the removed nodes, so the structure inherits
// linearizability and the non-blocking property from the primitives the
// same way the paper's multiset does:
//
//   - Put of a new key replaces a leaf with an internal node carrying the
//     new leaf and the old leaf (SCX on ⟨parent⟩, nothing finalized).
//   - Put of an existing key replaces the old leaf (SCX on ⟨parent, leaf⟩,
//     finalizing the old leaf).
//   - Delete replaces the parent with the leaf's sibling (SCX on
//     ⟨grandparent, parent, children in left-right order⟩, finalizing the
//     parent and the removed leaf).
//
// Searches traverse child pointers with plain reads, justified by the
// paper's Proposition 2; updates run on the internal/template engine, which
// owns the retry loop, backoff and contention counters. The tree uses the
// standard two-sentinel construction (keys ∞₁ < ∞₂ above every real key) so
// that every real leaf has an internal parent and grandparent.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package bst

import (
	"cmp"
	"fmt"

	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

// Mutable-field indices of an internal node's Data-record.
const (
	fieldLeft  = 0
	fieldRight = 1
)

// sentinel ranks; larger ranks compare above every real key.
type sentinel int8

const (
	sentReal sentinel = iota
	sentInf1
	sentInf2
)

// node is one tree node. All node fields except the record's child pointers
// are immutable, as the template requires.
type node[K cmp.Ordered, V any] struct {
	rec  *core.Record
	key  K
	sent sentinel
	leaf bool
	val  V // meaningful only for real leaves
}

func newInternal[K cmp.Ordered, V any](key K, sent sentinel, left, right *node[K, V]) *node[K, V] {
	n := &node[K, V]{key: key, sent: sent}
	n.rec = core.NewRecord(2, []any{left, right}, n)
	return n
}

func newLeaf[K cmp.Ordered, V any](key K, sent sentinel, val V) *node[K, V] {
	n := &node[K, V]{key: key, sent: sent, leaf: true, val: val}
	n.rec = core.NewRecord(0, nil, n)
	return n
}

// child reads the dir child of internal node n with a plain read.
func (n *node[K, V]) child(dir int) *node[K, V] {
	c, _ := n.rec.Read(dir).(*node[K, V])
	return c
}

// keyLess reports whether a search for key descends left at n, i.e.
// key < n.key with sentinel keys above all real keys.
func (n *node[K, V]) keyLess(key K) bool {
	if n.sent != sentReal {
		return true
	}
	return key < n.key
}

// matches reports whether leaf n holds exactly key.
func (n *node[K, V]) matches(key K) bool {
	return n.sent == sentReal && n.key == key
}

// Tree is a non-blocking ordered map from K to V. The zero value is not
// usable; create one with New. All methods are safe for concurrent use.
type Tree[K cmp.Ordered, V any] struct {
	root     *node[K, V]
	policy   template.Policy
	putStats template.OpStats
	delStats template.OpStats
}

// New creates an empty tree: a root router with key ∞₂ whose children are
// the ∞₁ and ∞₂ sentinel leaves. The root is the sole entry point and is
// never finalized.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	var zeroK K
	var zeroV V
	l1 := newLeaf(zeroK, sentInf1, zeroV)
	l2 := newLeaf(zeroK, sentInf2, zeroV)
	return &Tree[K, V]{root: newInternal(zeroK, sentInf2, l1, l2)}
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the tree.
func (t *Tree[K, V]) SetPolicy(p template.Policy) { t.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (t *Tree[K, V]) EngineStats() template.Counters {
	return t.putStats.Snapshot().Add(t.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (t *Tree[K, V]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"put":    t.putStats.Snapshot(),
		"delete": t.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Tree: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Tree.
type Session[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (t *Tree[K, V]) Attach(h *core.Handle) Session[K, V] {
	return Session[K, V]{t: t, h: h}
}

// Handle returns the Session's Handle.
func (s Session[K, V]) Handle() *core.Handle { return s.h }

// search walks from the root to the leaf whose key range covers key,
// returning the leaf l, its parent p and grandparent g (g is nil iff p is
// the root). Plain reads only.
func (t *Tree[K, V]) search(key K) (g, p, l *node[K, V]) {
	l = t.root
	for !l.leaf {
		g = p
		p = l
		if l.keyLess(key) {
			l = l.child(fieldLeft)
		} else {
			l = l.child(fieldRight)
		}
	}
	return g, p, l
}

// Get returns the value stored for key, if any. Searches are plain reads
// (Proposition 2), so Get needs no Handle.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	_, _, l := t.search(key)
	if l.matches(key) {
		return l.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, _, l := t.search(key)
	return l.matches(key)
}

// Put maps key to val using a pooled Handle; see Session.Put for the
// hot-path form.
func (t *Tree[K, V]) Put(key K, val V) bool {
	h := core.AcquireHandle()
	ok := t.Attach(h).Put(key, val)
	h.Release()
	return ok
}

// Delete removes key's mapping using a pooled Handle; see Session.Delete
// for the hot-path form.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Delete(key)
	h.Release()
	return v, ok
}

// Get returns the value stored for key, if any.
func (s Session[K, V]) Get(key K) (V, bool) { return s.t.Get(key) }

// Contains reports whether key is present.
func (s Session[K, V]) Contains(key K) bool { return s.t.Contains(key) }

// childDir returns the field index of p's child that snapshot snap shows as
// c, or -1 if c is no longer a child of p in snap.
func childDir[K cmp.Ordered, V any](snap core.Snapshot, c *node[K, V]) int {
	if n, _ := snap[fieldLeft].(*node[K, V]); n == c {
		return fieldLeft
	}
	if n, _ := snap[fieldRight].(*node[K, V]); n == c {
		return fieldRight
	}
	return -1
}

// Put maps key to val, returning true if key was newly inserted and false if
// an existing mapping was replaced.
func (s Session[K, V]) Put(key K, val V) bool {
	t := s.t
	return template.Run(s.h, t.policy, &t.putStats, func(c *template.Ctx) (bool, template.Action) {
		_, p, l := t.search(key)
		localp, st := c.LLX(p.rec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		dir := childDir(localp, l)
		if dir == -1 {
			return false, template.Retry // tree moved under us; re-search
		}
		if l.matches(key) {
			// Replace the existing leaf, finalizing it.
			if _, st := c.LLX(l.rec); st != core.LLXOK {
				return false, template.Retry
			}
			repl := newLeaf(key, sentReal, val)
			if c.SCX([]*core.Record{p.rec, l.rec}, []*core.Record{l.rec},
				p.rec.Field(dir), repl) {
				return false, template.Done
			}
			return false, template.Retry
		}
		// Splice an internal node carrying the new leaf and the old leaf.
		nl := newLeaf(key, sentReal, val)
		var inner *node[K, V]
		switch {
		case l.sent != sentReal:
			// key < l: the router inherits l's sentinel key.
			inner = newInternal(l.key, l.sent, nl, l)
		case key < l.key:
			inner = newInternal(l.key, sentReal, nl, l)
		default:
			inner = newInternal(key, sentReal, l, nl)
		}
		if c.SCX([]*core.Record{p.rec}, nil, p.rec.Field(dir), inner) {
			return true, template.Done
		}
		return false, template.Retry
	})
}

// delResult carries Delete's two return values through the engine.
type delResult[V any] struct {
	val V
	ok  bool
}

// Delete removes key's mapping, returning the removed value and true, or the
// zero value and false if key was absent.
func (s Session[K, V]) Delete(key K) (V, bool) {
	t := s.t
	res := template.Run(s.h, t.policy, &t.delStats, func(c *template.Ctx) (delResult[V], template.Action) {
		g, p, l := t.search(key)
		if !l.matches(key) {
			return delResult[V]{}, template.Done
		}
		// A real leaf always has an internal parent and grandparent thanks
		// to the sentinel construction.
		localg, st := c.LLX(g.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		pdir := childDir(localg, p)
		if pdir == -1 {
			return delResult[V]{}, template.Retry
		}
		localp, st := c.LLX(p.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		ldir := childDir(localp, l)
		if ldir == -1 {
			return delResult[V]{}, template.Retry
		}
		sib, _ := localp[1-ldir].(*node[K, V]) // sibling, per the snapshot
		if sib == nil {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLX(l.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLX(sib.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		// V lists g, p, then p's children in left-right order — an order
		// consistent with a preorder walk, satisfying the Section 4.1
		// total-order constraint.
		var v []*core.Record
		if ldir == fieldLeft {
			v = []*core.Record{g.rec, p.rec, l.rec, sib.rec}
		} else {
			v = []*core.Record{g.rec, p.rec, sib.rec, l.rec}
		}
		if c.SCX(v, []*core.Record{p.rec, l.rec}, g.rec.Field(pdir), sib) {
			return delResult[V]{val: l.val, ok: true}, template.Done
		}
		return delResult[V]{}, template.Retry
	})
	return res.val, res.ok
}

// Len returns the number of real keys observed by one traversal. On a
// quiescent tree it is exact; under concurrency it is a weakly consistent
// count (each counted leaf was present at some point, Proposition 2).
func (t *Tree[K, V]) Len() int {
	n := 0
	t.walk(t.root, func(l *node[K, V]) { n++ })
	return n
}

// Keys returns the real keys in ascending order, with the same consistency
// caveat as Len.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	t.walk(t.root, func(l *node[K, V]) { keys = append(keys, l.key) })
	return keys
}

// Items returns the key -> value contents, with the same consistency caveat
// as Len.
func (t *Tree[K, V]) Items() map[K]V {
	items := make(map[K]V)
	t.walk(t.root, func(l *node[K, V]) { items[l.key] = l.val })
	return items
}

// walk visits real leaves in key order.
func (t *Tree[K, V]) walk(n *node[K, V], visit func(l *node[K, V])) {
	if n == nil {
		return
	}
	if n.leaf {
		if n.sent == sentReal {
			visit(n)
		}
		return
	}
	t.walk(n.child(fieldLeft), visit)
	t.walk(n.child(fieldRight), visit)
}

// CheckInvariants verifies the external-BST shape on a quiescent tree: every
// internal node has two children, keys respect the search-tree order with
// sentinels outermost, and no reachable node is finalized. It returns an
// error describing the first violation. Intended for tests.
func (t *Tree[K, V]) CheckInvariants() error {
	return t.check(t.root, nil, nil)
}

// check validates the subtree at n against the half-open key interval
// [lo, hi) expressed as optional reference nodes: a router sends keys
// strictly below its own key left and keys at or above it right.
func (t *Tree[K, V]) check(n, lo, hi *node[K, V]) error {
	if n == nil {
		return fmt.Errorf("nil child reachable")
	}
	if n.rec.Finalized() {
		return fmt.Errorf("reachable node (key %v, leaf=%v) is finalized", n.key, n.leaf)
	}
	if lo != nil && nodeLess(n, lo) {
		return fmt.Errorf("node %v violates lower bound %v", n.key, lo.key)
	}
	if hi != nil && !nodeLess(n, hi) {
		return fmt.Errorf("node %v violates upper bound %v", n.key, hi.key)
	}
	if n.leaf {
		return nil
	}
	if err := t.check(n.child(fieldLeft), lo, n); err != nil {
		return err
	}
	return t.check(n.child(fieldRight), n, hi)
}

// nodeLess orders nodes by (real keys, then ∞₁, then ∞₂), strictly.
func nodeLess[K cmp.Ordered, V any](a, b *node[K, V]) bool {
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.sent != sentReal {
		return false // equal sentinels are not strictly ordered
	}
	return a.key < b.key
}
