package bst_test

import (
	"math/rand"
	"sync"
	"testing"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
)

// TestLinearizableHistories records small concurrent runs against the BST
// and verifies each against the sequential map specification (exp E7/E8).
func TestLinearizableHistories(t *testing.T) {
	const rounds = 60
	const procs = 3
	const opsPerProc = 5
	const keyRange = 3

	for round := 0; round < rounds; round++ {
		tr := bst.New[int, int]()
		rec := history.NewRecorder(procs)

		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g + 7777)))
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					key := rng.Intn(keyRange)
					val := rng.Intn(100)
					switch rng.Intn(3) {
					case 0:
						pr.Invoke(linearizability.MapInput{Op: "put", Key: key, Val: val},
							func() any { return tr.Put(key, val) })
					case 1:
						pr.Invoke(linearizability.MapInput{Op: "delete", Key: key},
							func() any { v, ok := tr.Delete(key); return [2]any{v, ok} })
					default:
						pr.Invoke(linearizability.MapInput{Op: "get", Key: key},
							func() any { v, ok := tr.Get(key); return [2]any{v, ok} })
					}
				}
			}(g)
		}
		wg.Wait()

		ops := rec.Ops()
		if !linearizability.Check(linearizability.MapModel(), ops) {
			t.Fatalf("round %d: history not linearizable:\n%+v", round, ops)
		}
	}
}
