# Tier-1 verification plus the lint, race and benchmark-smoke lanes CI runs
# on every PR.

GO ?= go
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: all vet lint build test race benchsmoke check bench-core clean

all: check

vet:
	$(GO) vet ./...

# Lint: go vet always; staticcheck when installed. Local boxes without it
# still get a meaningful `make lint`, but under CI (the runner sets CI=true)
# a missing staticcheck is a hard failure so the gate cannot silently vanish.
lint: vet
ifdef STATICCHECK
	$(STATICCHECK) ./...
else ifdef CI
	$(error lint: staticcheck required in CI but not installed)
else
	@echo "lint: staticcheck not installed; ran go vet only"
endif

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The step-semantics, helping and linearizability tests exercise real
# concurrency; run the core, template and multiset packages under the race
# detector.
race:
	$(GO) test -race ./internal/core ./internal/template ./internal/multiset

# Compile and execute every benchmark once so benchmark code cannot rot
# without failing CI; -benchtime=1x keeps it to seconds.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: lint build test race benchsmoke

# Regenerate the checked-in core fast-path microbenchmark dump.
bench-core:
	$(GO) run ./cmd/bench -corejson BENCH_core.json

clean:
	$(GO) clean ./...
