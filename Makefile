# Tier-1 verification plus the race-detector pass CI runs on every PR.

GO ?= go

.PHONY: all vet build test race check bench-core clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The step-semantics, helping and linearizability tests exercise real
# concurrency; run the core and multiset packages under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/multiset

check: vet build test race

# Regenerate the checked-in core fast-path microbenchmark dump.
bench-core:
	$(GO) run ./cmd/bench -corejson BENCH_core.json

clean:
	$(GO) clean ./...
