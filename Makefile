# Tier-1 verification plus the lint, race and benchmark-smoke lanes CI runs
# on every PR.

GO ?= go
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: all vet lint build test race benchsmoke benchdiff benchdiff-parallel benchdiff-server server-smoke crash-smoke fuzz-smoke check bench-core bench-parallel bench-server bench-server-parallel clean

all: check

vet:
	$(GO) vet ./...

# Lint: go vet always; staticcheck when installed. Local boxes without it
# still get a meaningful `make lint`, but under CI (the runner sets CI=true)
# a missing staticcheck is a hard failure so the gate cannot silently vanish.
lint: vet
ifdef STATICCHECK
	$(STATICCHECK) ./...
else ifdef CI
	$(error lint: staticcheck required in CI but not installed)
else
	@echo "lint: staticcheck not installed; ran go vet only"
endif

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The step-semantics, helping and linearizability tests exercise real
# concurrency; run the core, template and multiset packages plus the
# container/shard layer (cross-shard counter aggregation), the epoch
# reclamation machinery (including the announcement-slot recycling hammer,
# which races claim/release/scavenge against concurrent epoch advances), and
# the queue/stack recycle hammers under the race detector: the epoch
# protocol's happens-before edges are exactly what the detector validates.
# internal/obs rides along for its concurrent record/scrape test — striped
# histogram folds and trace-ring snapshots racing recorders must be clean.
race:
	$(GO) test -race ./internal/core ./internal/template ./internal/multiset \
		./internal/container ./internal/shard ./internal/reclaim \
		./internal/queue ./internal/stack ./internal/bst ./internal/trie \
		./internal/hashmap ./internal/hashutil \
		./internal/proto ./internal/server ./internal/client \
		./internal/wal ./internal/snapshot ./internal/obs

# Compile and execute every benchmark once so benchmark code cannot rot
# without failing CI (-benchtime=1x keeps it to seconds), run the parallel
# comparison lane at GOMAXPROCS 1 and 2 (the amortized epoch protocol's
# multi-worker paths — announcement refresh, slot recycling, epoch advance
# racing — only execute with concurrent sessions), and smoke the sharded
# stress path end to end (reclamation is always on: the stress run churns
# node recycling under invariant checks).
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench BenchmarkParallel -benchtime 1x -cpu 1,2 .
	$(GO) run ./cmd/stress -dur 1s -threads 4 -keys 128 -shards 4 -checks 2
	$(GO) run ./cmd/stress -struct hashmap -dur 1s -threads 4 -keys 128 -checks 2
	$(GO) run ./cmd/stress -struct hashmap -resizehammer -dur 1s -threads 4 -checks 2

# Re-run the core fast-path suite and diff against the checked-in
# trajectory, failing if any row's allocs/op regressed. Timings are noisy
# on shared runners; allocation counts are deterministic, so that is the
# gate (see cmd/bench -compare).
benchdiff:
	$(GO) run ./cmd/bench -compare BENCH_core.json -maxallocregress

# Re-run the parallel comparison lane and diff against the checked-in
# trajectory. Gates: allocs/op must not regress on any shared cell, and
# every parallel_hashmap_* row must stay within 1.3x ns/op going from
# GOMAXPROCS=1 to 2 — the within-run scaling bound the amortized epoch
# protocol exists to hold. Absolute ns/op deltas are printed but not gated
# (host-dependent), which is also why this target is not part of `check`:
# run it locally when touching the reclamation or hash-map hot paths.
benchdiff-parallel:
	$(GO) run ./cmd/bench -compareparallel BENCH_parallel.json -parallelcpus 1,2

# Re-run the parallel server suite and diff against the checked-in
# trajectory. Gates: process-wide allocs/op must stay under the 0.5 ceiling
# on every cell (the batched hot path is allocation-free; a path that starts
# allocating blows past it immediately), and the read-heavy hashmap cell's
# ops/sec must not collapse going from GOMAXPROCS=1 to 2 (within-run ratio,
# re-measured max-of-N before failing). Like benchdiff-parallel, not part of
# `check` — absolute throughput is host-dependent; run it when touching the
# server, proto or WAL hot paths.
benchdiff-server:
	$(GO) run ./cmd/bench -compareserver BENCH_server.json -servercpus 1,2 -lgdur 1s

# End-to-end smoke of the serving stack: start cmd/server at GOMAXPROCS=2,
# drive it with the load generator for a second, scrape -metrics, SIGTERM,
# and assert a clean drain (see scripts/server_smoke.sh).
server-smoke:
	sh ./scripts/server_smoke.sh

# Durability smoke: kill -9 a loaded durable server mid-run, restart it over
# the same WAL directory, and verify per-key interval conservation over the
# wire (see scripts/crash_smoke.sh).
crash-smoke:
	sh ./scripts/crash_smoke.sh

# Short native-fuzz passes over the two wire-format parsers: the protocol
# frame reader and the WAL record scanner. Malformed input must error (or,
# for a torn WAL tail, truncate), never panic or over-read.
fuzz-smoke:
	$(GO) test ./internal/proto -run '^$$' -fuzz '^FuzzParseFrame$$' -fuzztime 10s
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime 10s

check: lint build test race benchsmoke benchdiff server-smoke crash-smoke fuzz-smoke

# Regenerate the checked-in core fast-path microbenchmark dump.
bench-core:
	$(GO) run ./cmd/bench -corejson BENCH_core.json

# Regenerate the checked-in multi-core parallel comparison dump (the hash
# map vs sync.Map vs an RWMutex map vs the sharded multiset, at GOMAXPROCS
# 1, 2 and 4; see cmd/bench -parallel).
bench-parallel:
	$(GO) run ./cmd/bench -parallel -parallelcpus 1,2,4 -paralleljson BENCH_parallel.json

# Regenerate the checked-in server throughput/latency dump: the canonical
# self-hosted suite (read-heavy/mixed/Zipf over the hashmap and the sharded
# multiset) at GOMAXPROCS 1, 2 and 4, one row per (cell, procs).
bench-server:
	$(GO) run ./cmd/bench -serverbench -servercpus 1,2,4 -lgdur 2s \
		-serverout BENCH_server.json

# One-off parallel server measurement without rewriting the checked-in dump:
# the same suite at GOMAXPROCS 1 and 2 with a short window, for quick
# before/after looks while working on the server fast path.
bench-server-parallel:
	$(GO) run ./cmd/bench -serverbench -servercpus 1,2 -lgdur 1s

clean:
	$(GO) clean ./...
