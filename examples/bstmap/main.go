// BST example: a concurrent ordered index built on the LLX/SCX external
// binary search tree (the application family of the paper's Section 6).
//
// The scenario is a small order book: concurrent writers insert, reprice and
// cancel orders keyed by price while readers continuously look prices up;
// at the end the index is checked against a sequential reconstruction and
// the BST shape invariants.
//
// Run with: go run ./examples/bstmap
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/core"
)

func main() {
	index := bst.New[int, string]()

	// Writers churn disjoint price bands so the final state is predictable.
	const writers = 4
	const band = 250 // price band per writer
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			h := core.AcquireHandle()
			defer h.Release()
			s := index.Attach(h)
			base := w * band
			// Insert the band, reprice half, cancel a third.
			for i := 0; i < band; i++ {
				s.Put(base+i, fmt.Sprintf("order-%d-v1", base+i))
			}
			for i := 0; i < band; i += 2 {
				s.Put(base+i, fmt.Sprintf("order-%d-v2", base+i))
			}
			for i := 0; i < band; i += 3 {
				s.Delete(base + i)
			}
			// A little random churn for interleaving variety.
			for i := 0; i < 500; i++ {
				k := base + rng.Intn(band)
				if rng.Intn(2) == 0 {
					s.Put(k, fmt.Sprintf("order-%d-v3", k))
				} else {
					s.Delete(k)
				}
			}
			// Deterministic final pass so the expected state is known.
			for i := 0; i < band; i++ {
				k := base + i
				if i%5 == 0 {
					s.Delete(k)
				} else {
					s.Put(k, fmt.Sprintf("order-%d-final", k))
				}
			}
		}(w)
	}

	// A reader races the writers, counting successful lookups; it must never
	// crash or observe a malformed value. (On a single-CPU box the scheduler
	// may give it few slices mid-churn; the counts below just report what it
	// saw.)
	stop := make(chan struct{})
	var reads, hits int
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			reads++
			if _, ok := index.Get(rng.Intn(writers * band)); ok {
				hits++
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()

	// Verify against the deterministic final pass.
	expectLive := 0
	mismatches := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < band; i++ {
			k := w*band + i
			v, ok := index.Get(k)
			if i%5 == 0 {
				if ok {
					mismatches++
				}
				continue
			}
			expectLive++
			if !ok || v != fmt.Sprintf("order-%d-final", k) {
				mismatches++
			}
		}
	}

	fmt.Printf("index holds %d orders (expected %d); racing reader: %d hits in %d reads\n",
		index.Len(), expectLive, hits, reads)
	if err := index.CheckInvariants(); err != nil {
		fmt.Printf("BST invariants VIOLATED: %v\n", err)
		return
	}
	fmt.Printf("BST invariants hold; %d mismatches against the sequential reconstruction\n",
		mismatches)

	keys := index.Keys()
	fmt.Printf("lowest ask %d, highest ask %d\n", keys[0], keys[len(keys)-1])
}
