// KV server example: the whole stack end to end — LLX/SCX structures under
// the template engine, hash-sharded behind the container layer, served
// over TCP with the internal/proto protocol, and driven by the pipelining
// client.
//
// The example starts a server over a 4-shard multiset on a random loopback
// port, walks the synchronous client API, fires one pipelined batch (one
// flush out, one flush back — the same reply-batching the server applies),
// prints the engine counters from the STATS command, and shuts down
// gracefully: the final Size the server reports equals acknowledged
// inserts minus acknowledged deletes, the conservation invariant carried
// across the wire.
//
// Run with: go run ./examples/kvserver
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/harness"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
)

func main() {
	// Serve the paper's multiset over 4 hash shards; any of the seven
	// structure names from the harness works here.
	cont, err := harness.BuildContainer("llx-multiset", 4, nil)
	check(err)
	srv, err := server.Start(cont, server.Config{})
	check(err)
	fmt.Printf("serving llx-multiset/4sh on %s\n", srv.Addr())

	cl, err := client.Dial(srv.Addr().String())
	check(err)
	defer cl.Close()

	// Synchronous API: one round trip per call.
	check(cl.Ping())
	applied, err := cl.Set(7)
	check(err)
	fmt.Printf("SET 7   -> applied=%v\n", applied)
	found, err := cl.Get(7)
	check(err)
	fmt.Printf("GET 7   -> found=%v\n", found)
	applied, err = cl.Del(7)
	check(err)
	fmt.Printf("DEL 7   -> applied=%v\n", applied)

	// Pipelined API: 100 inserts in one batch — one socket write out, one
	// reply batch back.
	acked := 0
	for k := 0; k < 100; k++ {
		check(cl.Send(proto.Request{Op: proto.OpSet, Key: int64(k)}))
	}
	check(cl.Flush())
	for i := 0; i < 100; i++ {
		rep, err := cl.Recv()
		check(err)
		if rep.Status == proto.StatusTrue {
			acked++
		}
	}
	size, err := cl.Size()
	check(err)
	fmt.Printf("pipelined batch: %d acked inserts, SIZE -> %d\n", acked, size)

	// The STATS command returns the server's full text metrics dump; show
	// the engine line (attempts/retries of every LLX/SCX update the batch
	// ran).
	stats, err := cl.Stats()
	check(err)
	for _, line := range strings.Split(stats, "\n") {
		if strings.HasPrefix(line, "engine: ") || strings.HasPrefix(line, "server: ops") {
			fmt.Println(line)
		}
	}

	// Graceful shutdown: drain, flush acknowledgements, close sessions.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	check(srv.Shutdown(ctx))
	fmt.Printf("drained; final size %d (= acked inserts %d - acked deletes 1)\n", srv.Size(), acked+1)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
