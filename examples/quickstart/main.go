// Quickstart: the LLX/SCX primitives on a bare Data-record.
//
// This example mirrors the paper's Section 3 walk-through: create a
// Data-record with mutable fields, snapshot it with LLX, update one field
// with SCX, watch a conflicting SCX fail, and finalize a record so it can
// never change again.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"pragmaprim/internal/core"
)

func main() {
	// A Data-record with two mutable fields (count, note) and one immutable
	// field (its name).
	rec := core.NewRecord(2, []any{0, "fresh"}, "demo-record")
	fmt.Printf("record %q starts with count=%v note=%q\n",
		rec.Immutable(0), rec.Read(0), rec.Read(1))

	// Each participating goroutine acquires a Handle from the shared pool;
	// the Handle's Process holds its table of LLX results (the links SCX
	// and VLX validate against). Data-structure code never sees these:
	// the internal/template engine drives the primitives for it.
	ah := core.AcquireHandle()
	defer ah.Release()
	bh := core.AcquireHandle()
	defer bh.Release()
	alice := ah.Process()
	bob := bh.Process()

	// Alice snapshots the record and bumps its count with an SCX that
	// depends on that snapshot.
	snap, st := alice.LLX(rec)
	fmt.Printf("alice LLX -> %v %v\n", snap, st)
	ok := alice.SCX([]*core.Record{rec}, nil, rec.Field(0), snap[0].(int)+1)
	fmt.Printf("alice SCX(count := %d) -> %v; count is now %v\n",
		snap[0].(int)+1, ok, rec.Read(0))

	// Bob linked BEFORE alice's update, so his SCX must fail: the record
	// changed since his LLX. That failed SCX writes nothing.
	bobSnap, _ := bob.LLX(rec)
	_ = bobSnap
	// ... meanwhile alice updates again ...
	snap, _ = alice.LLX(rec)
	alice.SCX([]*core.Record{rec}, nil, rec.Field(1), "updated-by-alice")
	ok = bob.SCX([]*core.Record{rec}, nil, rec.Field(1), "updated-by-bob")
	fmt.Printf("bob's stale SCX -> %v; note is %q\n", ok, rec.Read(1))

	// VLX validates that a set of records is unchanged since the links.
	a := core.NewRecord(1, []any{10}, "a")
	b := core.NewRecord(1, []any{20}, "b")
	alice.LLX(a)
	alice.LLX(b)
	fmt.Printf("alice VLX(a,b) with nothing changed -> %v\n", alice.VLX([]*core.Record{a, b}))
	bs, _ := bob.LLX(b)
	bob.SCX([]*core.Record{b}, nil, b.Field(0), bs[0].(int)+1)
	fmt.Printf("alice VLX(a,b) after bob touched b -> %v\n", alice.VLX([]*core.Record{a, b}))

	// SCX can atomically update one record AND finalize others — the paper's
	// key extension over LL/SC. Here alice moves a's value into b's
	// successor slot and retires a forever.
	alice.LLX(a)
	alice.LLX(b)
	ok = alice.SCX([]*core.Record{b, a}, []*core.Record{a}, b.Field(0), "moved")
	fmt.Printf("alice finalizing SCX -> %v; a finalized? %v\n", ok, a.Finalized())
	if _, st := bob.LLX(a); st == core.LLXFinalized {
		fmt.Println("bob's LLX(a) reports Finalized: a can never change again")
	}
}
