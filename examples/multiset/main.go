// Multiset example: a concurrent word-count over the paper's Section 5
// multiset.
//
// Several goroutines tally word occurrences from a shared corpus into one
// non-blocking multiset, then verify the tallies against a sequential count
// — the scenario (concurrent counted membership) the multiset ADT models.
//
// Run with: go run ./examples/multiset
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pragmaprim/internal/core"
	"pragmaprim/internal/multiset"
)

const corpus = `
the quick brown fox jumps over the lazy dog
the dog barks and the fox runs over the hill
a lazy afternoon the quick dog naps and the fox waits
`

func main() {
	words := strings.Fields(corpus)
	ms := multiset.New[string]()

	// Fan the corpus out over workers, each tallying into the shared
	// multiset through a Session bound to its own pooled Handle.
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := ms.Attach(h)
			for i := w; i < len(words); i += workers {
				s.Insert(words[i], 1)
			}
		}(w)
	}
	wg.Wait()

	// Sequential reference count.
	want := make(map[string]int)
	for _, w := range words {
		want[w]++
	}

	got := ms.Items()
	keys := ms.Keys()
	fmt.Printf("%d distinct words, %d total\n", len(keys), ms.TotalCount())
	for _, k := range keys {
		marker := ""
		if got[k] != want[k] {
			marker = "  MISMATCH"
		}
		fmt.Printf("  %-10s %d%s\n", k, got[k], marker)
	}

	// Delete semantics: remove exactly the "the"s, then try to over-delete.
	// One-off operations need no Handle at all: the methods acquire a
	// pooled one internally.
	theCount := ms.Get("the")
	fmt.Printf("deleting %d occurrences of %q -> %v\n",
		theCount, "the", ms.Delete("the", theCount))
	fmt.Printf("deleting one more %q -> %v (as the paper specifies, a short delete is a no-op)\n",
		"the", ms.Delete("the", 1))

	// The remainder is still consistent.
	delete(want, "the")
	rest := ms.Items()
	ok := len(rest) == len(want)
	for k, v := range want {
		if rest[k] != v {
			ok = false
		}
	}
	var status string
	if ok {
		status = "all counts match the sequential reference"
	} else {
		status = "MISMATCH against the sequential reference"
	}
	sortedKeys := make([]string, 0, len(rest))
	for k := range rest {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	fmt.Printf("%d words remain (%s)\n", len(sortedKeys), status)
}
