// Sharded example: absorbing a hot-key workload by hash-partitioning.
//
// A Zipf-skewed update mix concentrates most of its traffic on a few hot
// keys. Against a single multiset those keys collide in every worker's SCX
// window; behind the internal/shard wrapper the hot keys spread over
// independent instances and the contention the engine counters report
// drops, with no change to the workload code — both runs drive the same
// container.Session interface. The sharded run also gives its hottest
// shard a backoff retry policy, the per-shard configuration the build
// callback exists for.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"sync"

	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
	"pragmaprim/internal/workload"
)

const (
	workers   = 8
	perWorker = 60000
	keyRange  = 1 << 10
)

// churn drives the standard Zipf update-heavy workload through any
// container — unsharded or sharded, same code path.
func churn(c container.Container) {
	cfg := workload.Config{KeyRange: keyRange, Dist: workload.Zipf, Mix: workload.UpdateHeavy}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.NewSession()
			defer s.Close()
			keys := cfg.NewKeyGen(int64(w)*2 + 1)
			ops := cfg.NewOpGen(int64(w)*2 + 2)
			for i := 0; i < perWorker; i++ {
				key := keys.Next()
				if ops.Next() == workload.OpInsert {
					s.Insert(key)
				} else {
					s.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func report(name string, c container.Container) {
	e := c.EngineStats()
	fmt.Printf("%-16s %8d ops  %6d retries  scx-fail %.3f%%  size %d\n",
		name, e.Ops, e.Retries(), 100*e.SCXFailureRate(), c.Size())
}

func main() {
	fmt.Printf("zipf update-heavy mix, %d workers x %d ops, %d keys\n\n",
		workers, perWorker, keyRange)

	// Baseline: one shared multiset.
	flat := container.Multiset(multiset.New[int]())
	churn(flat)
	report("unsharded", flat)

	// Sharded: the same structure behind 8 hash partitions. The Zipf
	// generator's most frequent key is 0, which Fibonacci hashing sends to
	// shard 0, so that shard alone gets a capped exponential backoff; the
	// cold shards keep retrying immediately — per-shard policies are sound
	// because no operation ever spans two shards.
	hot := shard.New(8, func(i int) container.Container {
		m := multiset.New[int]()
		if i == 0 {
			m.SetPolicy(template.CappedBackoff(16, 1024))
		}
		return container.Multiset(m)
	})
	churn(hot)
	report("sharded/8", hot)

	fmt.Println("\nper-shard traffic (hot keys concentrate, shards isolate them):")
	hot.ForEachShard(func(i int, c container.Container) {
		e := c.EngineStats()
		fmt.Printf("  shard %d: %8d ops  scx-fail %.3f%%  size %d\n",
			i, e.Ops, 100*e.SCXFailureRate(), c.Size())
	})
}
