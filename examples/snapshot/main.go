// Snapshot example: consistent multi-record reads with VLX.
//
// Concurrent workers move money between bank accounts; each transfer is a
// debit SCX followed by a credit SCX, so at any instant the sum of balances
// is at most the grand total (some money is in flight) and never above it.
// An auditor takes atomic cross-account snapshots with Process.SnapshotAll
// (one LLX per account validated by a single VLX): every validated snapshot
// must respect the at-most-grand-total invariant. Plain unvalidated reads
// could tear across many transfers and report totals above the grand total;
// the VLX-validated snapshots cannot.
//
// Run with: go run ./examples/snapshot
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

const (
	accounts       = 6
	initialBalance = 1000
	transfers      = 2000
	workers        = 3
)

func main() {
	// One record per account; field 0 is the balance.
	recs := make([]*core.Record, accounts)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{initialBalance}, fmt.Sprintf("acct-%d", i))
	}

	// Writers move money with single-record SCXs: debit one account, then
	// credit another. Individually atomic, pairwise not — exactly the
	// situation where a reader needs a cross-record atomic snapshot to see
	// a consistent total.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			h := core.AcquireHandle()
			defer h.Release()
			for i := 0; i < transfers; i++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				amount := 1 + rng.Intn(20)
				mutate(h, recs[from], -amount)
				mutate(h, recs[to], amount)
			}
		}(w)
	}

	// The auditor snapshots all accounts atomically. Because each transfer
	// is two separate SCXs, the snapshot total may be below the grand total
	// by at most the workers' in-flight amounts (bounded by workers*maxAmt),
	// but it can NEVER exceed it, and it can never show a torn single
	// account. Plain reads could drift arbitrarily across many transfers.
	ah := core.AcquireHandle()
	defer ah.Release()
	p := ah.Process()
	var audits, validated int
	minTotal, maxTotal := 1<<62, -1
	for validated < 300 {
		audits++
		snaps, ok := p.SnapshotAll(recs)
		if !ok {
			continue
		}
		total := 0
		for _, s := range snaps {
			total += s[0].(int)
		}
		if total < minTotal {
			minTotal = total
		}
		if total > maxTotal {
			maxTotal = total
		}
		if total > accounts*initialBalance {
			fmt.Printf("AUDIT VIOLATION: snapshot total %d exceeds %d\n",
				total, accounts*initialBalance)
			return
		}
		validated++
	}
	wg.Wait()

	grand := accounts * initialBalance
	fmt.Printf("%d audits, %d validated atomic snapshots\n", audits, validated)
	fmt.Printf("snapshot totals ranged [%d, %d]; invariant: never above %d\n",
		minTotal, maxTotal, grand)

	// Quiescent: all money accounted for.
	total := 0
	for _, r := range recs {
		total += r.Read(0).(int)
	}
	fmt.Printf("final total = %d (expected %d)\n", total, grand)
}

// mutate adds delta to the account's balance. The retry loop is the
// template engine's: the attempt body only says "snapshot, then commit the
// incremented value".
func mutate(h *core.Handle, r *core.Record, delta int) {
	template.Run(h, nil, nil, func(c *template.Ctx) (struct{}, template.Action) {
		snap, st := c.LLX(r)
		if st != core.LLXOK {
			return struct{}{}, template.Retry
		}
		if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+delta) {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}
