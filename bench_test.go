package pragmaprim_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"pragmaprim/internal/benchcore"
	"pragmaprim/internal/bst"
	"pragmaprim/internal/core"
	"pragmaprim/internal/harness"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/stack"
	"pragmaprim/internal/trie"
	"pragmaprim/internal/workload"
)

// --- E1: uncontended SCX cost (k+1 CAS, f+2 writes) ------------------------

// BenchmarkStepCountSCX times one LLX-per-record + SCX transaction over k
// records finalizing f, and reports the measured CAS and write steps per
// operation next to the paper's k+1 and f+2.
func BenchmarkStepCountSCX(b *testing.B) {
	for k := 1; k <= 5; k++ {
		for _, f := range []int{0, k} {
			b.Run(fmt.Sprintf("k=%d/f=%d", k, f), func(b *testing.B) {
				p := core.NewProcess()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					// Fresh records per iteration: finalized records cannot
					// be reused.
					recs := make([]*core.Record, k)
					for j := range recs {
						recs[j] = core.NewRecord(2, []any{j, nil})
					}
					b.StartTimer()
					for _, r := range recs {
						if _, st := p.LLX(r); st != core.LLXOK {
							b.Fatal("LLX failed")
						}
					}
					if !p.SCX(recs, recs[k-f:], recs[0].Field(1), i) {
						b.Fatal("SCX failed")
					}
				}
				b.ReportMetric(float64(p.Metrics.CASSteps())/float64(b.N), "CAS/op")
				b.ReportMetric(float64(p.Metrics.WriteSteps())/float64(b.N), "writes/op")
			})
		}
	}
}

// --- E2: VLX cost (k reads) -------------------------------------------------

// BenchmarkVLX times a VLX over k linked records.
func BenchmarkVLX(b *testing.B) {
	for k := 1; k <= 8; k *= 2 {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			p := core.NewProcess()
			recs := make([]*core.Record, k)
			for j := range recs {
				recs[j] = core.NewRecord(1, []any{j})
				if _, st := p.LLX(recs[j]); st != core.LLXOK {
					b.Fatal("LLX failed")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !p.VLX(recs) {
					b.Fatal("VLX failed")
				}
			}
			b.ReportMetric(float64(p.Metrics.VLXReads)/float64(b.N), "reads/op")
		})
	}
}

// BenchmarkLLXSnapshot times an uncontended LLX snapshot of a 2-field record
// through the snapshot-reuse API (0 allocs/op). The body is shared with
// cmd/bench -corejson via internal/benchcore.
func BenchmarkLLXSnapshot(b *testing.B) { benchcore.LLXInto(b) }

// BenchmarkLLXSnapshotAlloc is the allocating compatibility wrapper, for
// comparison with BenchmarkLLXSnapshot.
func BenchmarkLLXSnapshotAlloc(b *testing.B) { benchcore.LLXAlloc(b) }

// BenchmarkFieldRead times the plain read the paper's Proposition 2 lets
// searches use in place of LLX.
func BenchmarkFieldRead(b *testing.B) { benchcore.FieldRead(b) }

// BenchmarkTemplateSCXCycle routes the scx_cycle_k1 transaction through the
// template engine; compare against BenchmarkKCASvsSCX/SCX to see the
// engine's overhead over the hand-rolled loop.
func BenchmarkTemplateSCXCycle(b *testing.B) { benchcore.TemplateSCXCycle(b) }

// BenchmarkHandleRoundtrip times a pooled Handle Acquire/Release pair, the
// per-operation cost of the convenience API.
func BenchmarkHandleRoundtrip(b *testing.B) { benchcore.HandleRoundtrip(b) }

// --- E3: disjoint vs. shared SCX success ------------------------------------

// BenchmarkDisjointSCX runs SCX loops on per-goroutine records: the paper
// claims every one succeeds (no retries, no aborts).
func BenchmarkDisjointSCX(b *testing.B) { benchcore.DisjointSCX(b) }

// BenchmarkSharedSCX runs SCX retry loops against one shared record — the
// contended counterpoint to BenchmarkDisjointSCX.
func BenchmarkSharedSCX(b *testing.B) {
	r := core.NewRecord(1, []any{0})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := core.NewProcess()
		buf := make(core.Snapshot, 1)
		for pb.Next() {
			for {
				var st core.LLXStatus
				buf, st = p.LLXInto(r, buf)
				if st != core.LLXOK {
					continue
				}
				if p.SCX([]*core.Record{r}, nil, r.Field(0), buf[0].(int)+1) {
					break
				}
			}
		}
	})
}

// --- E4: SCX vs. k-CAS vs. KCSS ---------------------------------------------

// BenchmarkKCASvsSCX compares an uncontended k-record SCX transaction against
// an uncontended k-word MWCAS and a k-location KCSS over the same width
// (bodies shared with cmd/bench -corejson via internal/benchcore).
func BenchmarkKCASvsSCX(b *testing.B) {
	for k := 2; k <= 5; k++ {
		b.Run(fmt.Sprintf("SCX/k=%d", k), func(b *testing.B) {
			benchcore.SCXCycle(b, k)
		})
		b.Run(fmt.Sprintf("MWCAS/k=%d", k), func(b *testing.B) {
			benchcore.MWCASCycle(b, k)
		})
		b.Run(fmt.Sprintf("KCSS/k=%d", k), func(b *testing.B) {
			benchcore.KCSSCycle(b, k)
		})
	}
}

// --- E8: data-structure throughput -------------------------------------------

// benchSession drives one container session per worker with a standard
// mixed workload.
func benchSession(b *testing.B, f harness.Factory, cfg workload.Config) {
	b.Helper()
	inst := f.New()
	pre := inst.NewSession()
	for k := 0; k < cfg.KeyRange; k += 2 {
		pre.Insert(k)
	}
	pre.Close()
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := inst.NewSession()
		defer s.Close()
		id := seed.Add(1)
		keys := cfg.NewKeyGen(id*2 + 1)
		ops := cfg.NewOpGen(id*2 + 2)
		for pb.Next() {
			key := keys.Next()
			switch ops.Next() {
			case workload.OpGet:
				s.Get(key)
			case workload.OpInsert:
				s.Insert(key)
			default:
				s.Delete(key)
			}
		}
	})
}

// BenchmarkThroughput regenerates the E8 series: every structure under the
// read-mostly and update-heavy mixes (threads come from -cpu).
func BenchmarkThroughput(b *testing.B) {
	mixes := map[string]workload.Mix{
		"readmostly":  workload.ReadMostly,
		"updateheavy": workload.UpdateHeavy,
	}
	for _, f := range harness.Factories() {
		for mixName, mix := range mixes {
			b.Run(fmt.Sprintf("%s/%s", f.Name, mixName), func(b *testing.B) {
				benchSession(b, f, workload.Config{
					KeyRange: 1 << 10, Dist: workload.Uniform, Mix: mix,
				})
			})
		}
	}
}

// BenchmarkThroughputZipf is the skewed-contention variant of E8.
func BenchmarkThroughputZipf(b *testing.B) {
	for _, f := range harness.Factories() {
		b.Run(f.Name, func(b *testing.B) {
			benchSession(b, f, workload.Config{
				KeyRange: 1 << 10, Dist: workload.Zipf, Mix: workload.Balanced,
			})
		})
	}
}

// BenchmarkThroughputSharded is the E9 series in go-test form: the multiset
// behind 1/2/4/8 hash shards under the zipf hot-key update mix.
func BenchmarkThroughputSharded(b *testing.B) {
	base := harness.LLXMultisetFactory()
	for _, n := range []int{1, 2, 4, 8} {
		f := base
		if n > 1 {
			f = harness.ShardedFactory(base, n)
		}
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchSession(b, f, workload.Config{
				KeyRange: 1 << 10, Dist: workload.Zipf, Mix: workload.UpdateHeavy,
			})
		})
	}
}

// BenchmarkShardedMultisetOps times the single-threaded sharded multiset
// operations next to BenchmarkMultisetOps — the per-op cost of the
// container+shard layer (bodies shared with cmd/bench via benchcore).
func BenchmarkShardedMultisetOps(b *testing.B) {
	b.Run("Get", benchcore.ShardedMultisetGet)
	b.Run("InsertExisting", benchcore.ShardedMultisetInsertExisting)
	b.Run("InsertDeleteNew", benchcore.ShardedMultisetInsertDeleteNew)
}

// --- Single-threaded operation costs -----------------------------------------

// BenchmarkMultisetOps times the three multiset operations in isolation on a
// prefilled structure (bodies shared with cmd/bench via internal/benchcore).
func BenchmarkMultisetOps(b *testing.B) {
	b.Run("Get", benchcore.MultisetGet)
	b.Run("InsertExisting", benchcore.MultisetInsertExisting)
	b.Run("InsertDeleteNew", benchcore.MultisetInsertDeleteNew)
}

// BenchmarkTrieOps times the three Patricia-trie operations in isolation.
func BenchmarkTrieOps(b *testing.B) {
	const keys = 1 << 10
	newFilled := func() trie.Session[int] {
		t := trie.New[int]()
		s := t.Attach(core.NewHandle())
		for k := 0; k < keys; k++ {
			s.Put(uint64(k), k)
		}
		return s
	}
	b.Run("Get", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(uint64(rng.Intn(keys)))
		}
	})
	b.Run("PutExisting", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put(uint64(rng.Intn(keys)), i)
		}
	})
	b.Run("PutDeleteNew", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(3))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(keys + rng.Intn(keys))
			s.Put(k, i)
			s.Delete(k)
		}
	})
}

// BenchmarkQueueOps times enqueue/dequeue pairs, single-threaded and
// contended.
func BenchmarkQueueOps(b *testing.B) {
	b.Run("EnqueueDequeue", func(b *testing.B) {
		q := queue.New[int]()
		s := q.Attach(core.NewHandle())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Enqueue(i)
			s.Dequeue()
		}
	})
	b.Run("Contended", func(b *testing.B) {
		q := queue.New[int]()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			s := q.Attach(core.NewHandle())
			i := 0
			for pb.Next() {
				if i%2 == 0 {
					s.Enqueue(i)
				} else {
					s.Dequeue()
				}
				i++
			}
		})
	})
}

// BenchmarkStackOps times push/pop pairs, single-threaded and contended.
func BenchmarkStackOps(b *testing.B) {
	b.Run("PushPop", func(b *testing.B) {
		st := stack.New[int]()
		s := st.Attach(core.NewHandle())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Push(i)
			s.Pop()
		}
	})
	b.Run("Contended", func(b *testing.B) {
		st := stack.New[int]()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			s := st.Attach(core.NewHandle())
			i := 0
			for pb.Next() {
				if i%2 == 0 {
					s.Push(i)
				} else {
					s.Pop()
				}
				i++
			}
		})
	})
}

// BenchmarkBSTOps times the three BST operations in isolation.
func BenchmarkBSTOps(b *testing.B) {
	const keys = 1 << 10
	newFilled := func() bst.Session[int, int] {
		t := bst.New[int, int]()
		s := t.Attach(core.NewHandle())
		perm := rand.New(rand.NewSource(7)).Perm(keys)
		for _, k := range perm {
			s.Put(k, k)
		}
		return s
	}
	b.Run("Get", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(rng.Intn(keys))
		}
	})
	b.Run("PutExisting", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put(rng.Intn(keys), i)
		}
	})
	b.Run("PutDeleteNew", func(b *testing.B) {
		s := newFilled()
		rng := rand.New(rand.NewSource(3))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys + rng.Intn(keys)
			s.Put(k, k)
			s.Delete(k)
		}
	})
}

// BenchmarkWAL mirrors the wal_append / wal_group_commit / wal_append_batch
// rows of cmd/bench -corejson: the durable write path's append cost in
// isolation, the full append+group-commit cycle at the server's pipeline
// shape (one fsync per 128-record group), and the batched append the
// server's batch path uses (one mutex round per 128-record batch).
func BenchmarkWALAppend(b *testing.B)      { benchcore.WALAppend(b) }
func BenchmarkWALGroupCommit(b *testing.B) { benchcore.WALGroupCommit(b) }
func BenchmarkWALAppendBatch(b *testing.B) { benchcore.WALAppendBatch(b) }

// --- Hash map ----------------------------------------------------------------

// BenchmarkHashmapOps times the hash map's operations in isolation on a
// prefilled map (bodies shared with cmd/bench via internal/benchcore):
// O(1) Get, the no-op insert of a present key, and the warm
// insert/delete pair that exercises node recycling.
func BenchmarkHashmapOps(b *testing.B) {
	b.Run("Get", benchcore.HashmapGet)
	b.Run("InsertExisting", benchcore.HashmapInsertExisting)
	b.Run("InsertDeleteNew", benchcore.HashmapInsertDeleteNew)
}

// BenchmarkHashmapGetKeyspace sweeps the prefill size across three decades.
// The rows falsify (or confirm) the O(1) claim directly: multiset_get grows
// with the keyspace, these must stay flat up to cache effects — and
// BenchmarkBuiltinMapGetKeyspace is the control that quantifies those: Go's
// own open-addressed map pays the same DRAM-latency growth once the table
// outgrows the LLC, so "flat" means "tracks the built-in map's ratio", not
// "ignores the memory hierarchy".
func BenchmarkHashmapGetKeyspace(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchcore.HashmapGetKeyspace(b, n)
		})
	}
}

func BenchmarkBuiltinMapGetKeyspace(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchcore.BuiltinMapGetKeyspace(b, n)
		})
	}
}

// --- Parallel lane (-cpu 1,2,4) ----------------------------------------------

// The BenchmarkParallel* set is the multi-core comparison lane: the same
// mixed workload shape against the lock-free hash map, sync.Map, an
// RWMutex-guarded map, and the sharded LLX/SCX multiset, at 100% (pure
// read), 90% and 50% read mixes, plus a Zipf-skewed 90%-read lane (hot-key
// contention). Run with `go test -bench BenchmarkParallel -cpu 1,2,4`;
// cmd/bench -parallel runs the same bodies and records BENCH_parallel.json
// keyed by GOMAXPROCS.

func BenchmarkParallelHashmapRead100(b *testing.B)    { benchcore.ParallelHashmap(b, 100) }
func BenchmarkParallelHashmapRead90(b *testing.B)     { benchcore.ParallelHashmap(b, 90) }
func BenchmarkParallelHashmapRead50(b *testing.B)     { benchcore.ParallelHashmap(b, 50) }
func BenchmarkParallelHashmapRead90Zipf(b *testing.B) { benchcore.ParallelHashmapZipf(b, 90) }

func BenchmarkParallelSyncMapRead100(b *testing.B)    { benchcore.ParallelSyncMap(b, 100) }
func BenchmarkParallelSyncMapRead90(b *testing.B)     { benchcore.ParallelSyncMap(b, 90) }
func BenchmarkParallelSyncMapRead50(b *testing.B)     { benchcore.ParallelSyncMap(b, 50) }
func BenchmarkParallelSyncMapRead90Zipf(b *testing.B) { benchcore.ParallelSyncMapZipf(b, 90) }

func BenchmarkParallelMutexMapRead100(b *testing.B)    { benchcore.ParallelMutexMap(b, 100) }
func BenchmarkParallelMutexMapRead90(b *testing.B)     { benchcore.ParallelMutexMap(b, 90) }
func BenchmarkParallelMutexMapRead50(b *testing.B)     { benchcore.ParallelMutexMap(b, 50) }
func BenchmarkParallelMutexMapRead90Zipf(b *testing.B) { benchcore.ParallelMutexMapZipf(b, 90) }

func BenchmarkParallelShardedMultisetRead100(b *testing.B) { benchcore.ParallelShardedMultiset(b, 100) }
func BenchmarkParallelShardedMultisetRead90(b *testing.B)  { benchcore.ParallelShardedMultiset(b, 90) }
func BenchmarkParallelShardedMultisetRead50(b *testing.B)  { benchcore.ParallelShardedMultiset(b, 50) }
func BenchmarkParallelShardedMultisetRead90Zipf(b *testing.B) {
	benchcore.ParallelShardedMultisetZipf(b, 90)
}
